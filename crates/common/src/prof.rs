//! A lightweight self-profiler attributing wall-clock time to simulator
//! phases.
//!
//! The simulator's hot loop interleaves very different kinds of work —
//! SM issue, L2 slice service, memory-controller scheduling, the DRAM
//! timing model, the functional memory image, and the fast-forward event
//! scan. When optimizing, "where did the seconds go" must be measured, not
//! guessed. This module provides exactly that: scoped phase timers whose
//! per-phase **exclusive** totals (time in a phase minus time in nested
//! phases) are drained into a [`ProfReport`] per run.
//!
//! # Zero cost when disabled
//!
//! The whole implementation is gated on the `prof` cargo feature of this
//! crate. Without it, [`enter`] is an inline empty function returning a
//! zero-sized guard and [`take`] returns an empty report — call sites need
//! no `cfg` and the optimizer erases them. With the feature on, a phase
//! transition is one `RDTSC` read plus a handful of `Cell` load/stores in a
//! thread-local accumulator. Each thread accumulates independently: sweeps
//! run one simulation per job thread, and when `LAZYDRAM_CORES > 1` the
//! intra-run worker pool's threads each keep their own totals, drained via
//! [`take`] when the pool shuts down and merged into the run's report
//! ([`ProfReport::merge`]). Spans shorter than the `RDTSC` measurement
//! floor are
//! dropped rather than accumulated, so guard overhead is not reported as
//! phase time; the tick→seconds scale is recovered once per [`take`].
//!
//! # Usage
//!
//! ```
//! use lazydram_common::prof::{self, Phase};
//!
//! let _t = prof::enter(Phase::Slice);
//! // ... slice work; nested `enter` calls pause this phase ...
//! drop(_t);
//! let report = prof::take(); // drain totals (empty unless `prof` enabled)
//! assert!(report.total_secs() >= 0.0);
//! ```

/// A simulator phase that can be timed. Phases nest; time is attributed
/// exclusively (a nested phase pauses its parent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// SM warp scheduling + issue (including L1 and MSHR work) and reply
    /// delivery.
    SmIssue,
    /// L2 slice service: request queues, L2 lookups, VP replies, writebacks.
    Slice,
    /// Memory-controller scheduling: FR-FCFS selection, DMS/AMS decisions,
    /// pending-queue maintenance.
    Controller,
    /// The DRAM timing model: bank state machines, timing-constraint
    /// bookkeeping, refresh.
    Dram,
    /// The functional memory image: batch lane reads/writes and line copies.
    FuncMem,
    /// The event-driven fast-forward scan (`next_interesting_cycle`).
    FastForward,
    /// Main-thread barrier wait: time the coordinating thread spends
    /// waiting for worker-pool shards to finish a parallel phase
    /// (`LAZYDRAM_CORES > 1`; zero on the sequential path).
    Sync,
    /// Worker-thread idle time: time a pool worker spends waiting for the
    /// next parallel phase to be published (zero on the sequential path).
    Idle,
}

/// Number of [`Phase`] variants ([`Phase::ALL`]'s length).
pub const NUM_PHASES: usize = 8;

impl Phase {
    /// Every phase, in display order.
    pub const ALL: [Phase; NUM_PHASES] = [
        Phase::SmIssue,
        Phase::Slice,
        Phase::Controller,
        Phase::Dram,
        Phase::FuncMem,
        Phase::FastForward,
        Phase::Sync,
        Phase::Idle,
    ];

    /// Stable snake_case name (used as the JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Phase::SmIssue => "sm_issue",
            Phase::Slice => "slice",
            Phase::Controller => "controller",
            Phase::Dram => "dram",
            Phase::FuncMem => "func_mem",
            Phase::FastForward => "fast_forward",
            Phase::Sync => "sync",
            Phase::Idle => "idle",
        }
    }
}

/// Exclusive wall-clock seconds per [`Phase`], drained by [`take`].
///
/// Always present in `SimStats` but empty unless the `prof` feature is on.
/// Deliberately **excluded from equality**: wall-clock is nondeterministic,
/// and the suite's bit-identity checks compare simulation results, not
/// profiling overhead (see `SimStats`'s `PartialEq`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfReport {
    /// Exclusive seconds, indexed in [`Phase::ALL`] order.
    pub secs: [f64; NUM_PHASES],
}

impl ProfReport {
    /// `true` when no time was recorded (profiling off or nothing ran).
    pub fn is_empty(&self) -> bool {
        self.secs.iter().all(|&s| s == 0.0)
    }

    /// Sum of all phase times.
    pub fn total_secs(&self) -> f64 {
        self.secs.iter().sum()
    }

    /// Seconds attributed to `phase`.
    pub fn get(&self, phase: Phase) -> f64 {
        let idx = Phase::ALL.iter().position(|&p| p == phase).expect("phase in ALL");
        self.secs[idx]
    }

    /// Accumulates another report into this one (multi-launch runs).
    pub fn merge(&mut self, other: &ProfReport) {
        for (a, b) in self.secs.iter_mut().zip(&other.secs) {
            *a += b;
        }
    }

    /// Serializes as a JSON object keyed by phase name.
    pub fn to_json(&self) -> String {
        let mut o = crate::json::JsonObject::new();
        for (phase, &secs) in Phase::ALL.iter().zip(&self.secs) {
            o.f64(phase.name(), secs);
        }
        o.finish()
    }
}

#[cfg(feature = "prof")]
mod imp {
    use super::{Phase, ProfReport, NUM_PHASES};
    use std::cell::Cell;
    use std::time::Instant;

    /// Raw timestamp in abstract "ticks" (TSC cycles on x86_64, nanoseconds
    /// elsewhere). The phase guards sit inside per-cycle hot loops, so the
    /// clock read must be as cheap as possible: `RDTSC` is a handful of
    /// cycles versus the ~20–30 ns of a `clock_gettime` vDSO call, and the
    /// tick→seconds scale is recovered once per [`take`] by comparing a
    /// tick span against an `Instant` span over the whole run.
    #[cfg(target_arch = "x86_64")]
    #[inline(always)]
    fn now_ticks() -> u64 {
        // SAFETY: RDTSC has no preconditions; it only reads the TSC.
        unsafe { core::arch::x86_64::_rdtsc() }
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[inline(always)]
    fn now_ticks() -> u64 {
        use std::sync::OnceLock;
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }

    /// Sentinel for "no open phase" in [`State::open_phase`].
    const NONE: usize = NUM_PHASES;

    /// Spans shorter than this many ticks are dropped instead of
    /// accumulated: at that size the reading is mostly the `RDTSC`
    /// serialization cost itself, so charging it would report guard
    /// overhead as phase time. 32 TSC ticks is ~10 ns on common parts —
    /// well below anything the hot loops do per guard.
    const MEASUREMENT_FLOOR_TICKS: u64 = 32;

    /// Per-thread accumulator. All fields are `Cell`s: the simulator is
    /// single-threaded per run and every access is a straight load/store,
    /// with none of `RefCell`'s borrow-flag bookkeeping on the hot
    /// enter/drop path.
    struct State {
        /// Accumulated exclusive ticks per phase.
        acc: [Cell<u64>; NUM_PHASES],
        /// Innermost open phase ([`NONE`] when idle).
        open_phase: Cell<usize>,
        /// Tick at which the open phase's current *exclusive* span began.
        open_since: Cell<u64>,
        /// Wall-clock anchor taken at the first outermost [`enter`] after a
        /// [`take`]: converts accumulated ticks to seconds.
        anchor_tick: Cell<u64>,
        anchor_instant: Cell<Option<Instant>>,
    }

    thread_local! {
        static STATE: State = const {
            State {
                acc: [const { Cell::new(0) }; NUM_PHASES],
                open_phase: Cell::new(NONE),
                open_since: Cell::new(0),
                anchor_tick: Cell::new(0),
                anchor_instant: Cell::new(None),
            }
        };
    }

    /// Scope guard of one [`enter`] call; restores the enclosing phase on
    /// drop, charging the elapsed exclusive time to its own phase.
    pub struct Guard {
        phase: usize,
        prev: usize,
    }

    /// Starts timing `phase` until the returned guard drops. The enclosing
    /// phase (if any) is paused for the duration — exclusive attribution.
    #[must_use = "the phase ends when the guard drops"]
    pub fn enter(phase: Phase) -> Guard {
        // `Phase::ALL` lists variants in declaration order, so the
        // discriminant is the accumulator index.
        let phase = phase as usize;
        let now = now_ticks();
        let prev = STATE.with(|s| {
            let prev = s.open_phase.get();
            if prev != NONE {
                let span = now.wrapping_sub(s.open_since.get());
                if span >= MEASUREMENT_FLOOR_TICKS {
                    s.acc[prev].set(s.acc[prev].get().wrapping_add(span));
                }
            } else if s.anchor_instant.get().is_none() {
                // Only an *outermost* enter can be the first event after a
                // take(), so nested guards skip the anchor check entirely.
                s.anchor_tick.set(now);
                s.anchor_instant.set(Some(Instant::now()));
            }
            s.open_phase.set(phase);
            s.open_since.set(now);
            prev
        });
        Guard { phase, prev }
    }

    impl Drop for Guard {
        fn drop(&mut self) {
            let now = now_ticks();
            STATE.with(|s| {
                let p = s.open_phase.get();
                debug_assert_eq!(p, self.phase, "prof guards must nest");
                let span = now.wrapping_sub(s.open_since.get());
                if span >= MEASUREMENT_FLOOR_TICKS {
                    s.acc[p].set(s.acc[p].get().wrapping_add(span));
                }
                s.open_phase.set(self.prev);
                s.open_since.set(now);
            });
        }
    }

    /// Drains this thread's accumulated totals into a report and resets
    /// them. Call at run boundaries (no phase should be open).
    pub fn take() -> ProfReport {
        STATE.with(|s| {
            // Seconds per tick, recovered from the span since the anchor.
            // Assumes an invariant TSC (standard on every x86_64 this
            // simulator targets); the non-x86 fallback ticks in nanoseconds
            // so the measured scale lands on 1e-9 by construction.
            let scale = match s.anchor_instant.take() {
                Some(i0) => {
                    let dt = now_ticks().wrapping_sub(s.anchor_tick.get());
                    if dt == 0 { 0.0 } else { i0.elapsed().as_secs_f64() / dt as f64 }
                }
                None => 0.0,
            };
            let mut report = ProfReport::default();
            for (out, acc) in report.secs.iter_mut().zip(&s.acc) {
                *out = acc.replace(0) as f64 * scale;
            }
            report
        })
    }
}

#[cfg(not(feature = "prof"))]
mod imp {
    use super::{Phase, ProfReport};

    /// Zero-sized no-op guard (profiling compiled out).
    pub struct Guard {
        _priv: (),
    }

    /// No-op: profiling is compiled out without the `prof` feature.
    #[inline(always)]
    #[must_use = "the phase ends when the guard drops"]
    pub fn enter(_phase: Phase) -> Guard {
        Guard { _priv: () }
    }

    /// Always returns an empty report without the `prof` feature.
    #[inline(always)]
    pub fn take() -> ProfReport {
        ProfReport::default()
    }
}

pub use imp::{enter, take, Guard};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_starts_empty_and_merges() {
        let mut a = ProfReport::default();
        assert!(a.is_empty());
        let mut b = ProfReport::default();
        b.secs[0] = 1.5;
        b.secs[3] = 0.5;
        a.merge(&b);
        a.merge(&b);
        assert!((a.total_secs() - 4.0).abs() < 1e-12);
        assert!((a.get(Phase::SmIssue) - 3.0).abs() < 1e-12);
        assert!((a.get(Phase::Dram) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn json_has_all_phase_keys() {
        let r = ProfReport::default();
        let j = r.to_json();
        for p in Phase::ALL {
            assert!(j.contains(p.name()), "{j} missing {}", p.name());
        }
    }

    #[test]
    fn enter_take_roundtrip() {
        // Without the `prof` feature this exercises the no-op path; with it,
        // the real accumulator. Either way take() leaves a clean slate.
        {
            let _outer = enter(Phase::Slice);
            let _inner = enter(Phase::FuncMem);
        }
        let first = take();
        let second = take();
        assert!(second.is_empty(), "take must reset the accumulator");
        if cfg!(feature = "prof") {
            assert!(first.total_secs() >= 0.0);
        } else {
            assert!(first.is_empty());
        }
    }
}
