//! Minimal JSON emission for harness output.
//!
//! The external `serde`/`serde_json` crates are unavailable in the offline
//! build environment; the simulator only ever *writes* JSON (stats records
//! for downstream plotting), so this hand-rolled emitter covers the full
//! need: objects, arrays, strings with escaping, integers, floats and bools.
//! Non-finite floats serialize as `null` so every emitted document is valid
//! JSON.

/// Escapes a string for inclusion in a JSON document (without quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (`null` for NaN/±∞).
pub fn number(x: f64) -> String {
    if x.is_finite() {
        // `{}` on f64 always produces a valid JSON number and round-trips.
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Incremental JSON object writer.
///
/// ```
/// use lazydram_common::json::JsonObject;
/// let mut o = JsonObject::new();
/// o.str("app", "GEMM").u64("acts", 12).f64("ipc", 1.5).bool("ok", true);
/// assert_eq!(o.finish(), r#"{"app":"GEMM","acts":12,"ipc":1.5,"ok":true}"#);
/// ```
#[derive(Debug, Clone, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(&mut self, k: &str) -> &mut Self {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(&escape(k));
        self.buf.push_str("\":");
        self
    }

    /// Adds a string field.
    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push('"');
        self.buf.push_str(&escape(v));
        self.buf.push('"');
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a float field (`null` when non-finite).
    pub fn f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        self.buf.push_str(&number(v));
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a pre-serialized JSON value verbatim (nested object/array).
    pub fn raw(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// Adds an array of unsigned integers.
    pub fn u64_array(&mut self, k: &str, vs: &[u64]) -> &mut Self {
        let body: Vec<String> = vs.iter().map(|v| v.to_string()).collect();
        let arr = format!("[{}]", body.join(","));
        self.raw(k, &arr)
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(&self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Serializes a list of pre-serialized objects as a JSON array.
pub fn array(items: &[String]) -> String {
    format!("[{}]", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn object_builder_emits_valid_json() {
        let mut o = JsonObject::new();
        o.str("s", "x\"y")
            .u64("n", 7)
            .f64("f", 0.5)
            .f64("bad", f64::NAN)
            .bool("b", false)
            .u64_array("a", &[1, 2, 3])
            .raw("o", "{\"k\":1}");
        assert_eq!(
            o.finish(),
            r#"{"s":"x\"y","n":7,"f":0.5,"bad":null,"b":false,"a":[1,2,3],"o":{"k":1}}"#
        );
    }

    #[test]
    fn empty_object_and_array() {
        assert_eq!(JsonObject::new().finish(), "{}");
        assert_eq!(array(&[]), "[]");
        assert_eq!(array(&["{}".into(), "1".into()]), "[{},1]");
    }

    #[test]
    fn numbers_roundtrip_floats() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(-0.0), "-0");
        let x = 0.1 + 0.2;
        let s = number(x);
        assert_eq!(s.parse::<f64>().unwrap(), x);
    }
}
