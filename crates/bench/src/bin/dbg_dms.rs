//! DMS diagnosis: activations vs delay for one app, multiple queue sizes.
use lazydram_bench::SimBuilder;
use lazydram_common::{DmsMode, GpuConfig, SchedConfig};
use lazydram_workloads::by_name;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).cloned().unwrap_or("LPS".into());
    let scale: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let app = by_name(&name).expect("app");
    for qsize in [128usize, 512] {
        let cfg = GpuConfig { pending_queue_size: qsize, ..GpuConfig::default() };
        for delay in [0u32, 64, 128, 256, 512, 1024] {
            let sched = SchedConfig {
                dms: if delay == 0 { DmsMode::Off } else { DmsMode::Static(delay) },
                ..SchedConfig::baseline()
            };
            let r = SimBuilder::new(&app)
                .gpu(cfg.clone())
                .sched(sched, format!("DMS({delay})"))
                .scale(scale)
                .build()
                .run();
            println!(
                "{name} q={qsize} DMS({delay:>4}): acts={:>8} ipc={:>6.3} rbl={:>5.2} hits={:>7} misses={:>7} cycles={}",
                r.stats.dram.activations,
                r.stats.ipc(),
                r.stats.dram.avg_rbl(),
                r.stats.dram.row_hits,
                r.stats.dram.row_misses,
                r.stats.core_cycles,
            );
        }
    }
}
