//! Trace capture/replay workbench: capture request traces, replay them
//! under arbitrary schemes, and — the validation harness — measure the
//! open-loop **error envelope** (replayed vs execution-driven results) and
//! the replay speedup per app.
//!
//! ```text
//! dbg_trace capture APP FILE [SCALE]     record APP's baseline request stream
//! dbg_trace replay FILE [SCHEME]         replay a trace file through MC+DRAM
//! dbg_trace envelope APP [SCALE]         replayed-vs-executed error per scheme
//! dbg_trace sweep APP [SCALE]            timed fig04 delay sweep: executed vs replayed
//! ```
//!
//! Defaults: `SCALE 0.1`, `SCHEME baseline`. `envelope` is the harness
//! behind the documented replay accuracy numbers (EXPERIMENTS.md): open-loop
//! replay loses the closed-loop timing feedback (a delayed scheduler slows
//! the GPU down, which reshapes the arrival stream), so DRAM-side metrics
//! differ from the execution-driven run by a few percent; this tool
//! quantifies that instead of hand-waving it.

use lazydram_bench::{print_table, SimBuilder};
use lazydram_common::{DmsMode, GpuConfig, SchedConfig, Scheme, SimStats};
use lazydram_energy::{EnergyModel, MemoryTech};
use lazydram_gpu::{Trace, TraceSim};
use lazydram_workloads::{by_name, AppSpec};
use std::path::Path;
use std::time::Instant;

fn app_or_exit(name: &str) -> AppSpec {
    by_name(name).unwrap_or_else(|| {
        eprintln!("unknown app {name:?}");
        std::process::exit(2);
    })
}

fn parse_scale(args: &[String], at: usize) -> f64 {
    args.get(at).map_or(0.1, |s| {
        s.parse().unwrap_or_else(|e| {
            eprintln!("bad scale {s:?}: {e}");
            std::process::exit(2);
        })
    })
}

/// Captures the app's baseline request stream (the trace-store convention:
/// sweeps replay the baseline-policy stream under every candidate scheme).
fn capture(app: &AppSpec, scale: f64) -> (Trace, SimStats, f64) {
    let t0 = Instant::now();
    let r = SimBuilder::new(app).scheme(Scheme::Baseline).scale(scale).trace(true).build().run();
    let secs = t0.elapsed().as_secs_f64();
    (r.trace.expect("capture enabled"), r.stats, secs)
}

fn rel_err(replayed: f64, executed: f64) -> f64 {
    if executed == 0.0 {
        if replayed == 0.0 { 0.0 } else { f64::INFINITY }
    } else {
        (replayed - executed).abs() / executed
    }
}

fn row_energy(stats: &SimStats) -> f64 {
    EnergyModel::new(MemoryTech::Gddr5).breakdown(&stats.dram).row_energy_pj
}

fn cmd_capture(app: &AppSpec, path: &Path, scale: f64) {
    let cfg = GpuConfig::default();
    let (trace, stats, secs) = capture(app, scale);
    trace.save_file(path, &cfg).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    println!(
        "captured {} requests from {} (scale {scale}) in {secs:.2}s -> {}",
        trace.len(),
        app.name,
        path.display()
    );
    println!("  geometry digest {:016x}", Trace::stream_digest(&cfg));
    println!("  execution-driven baseline: {} activations", stats.dram.activations);
}

fn cmd_replay(path: &Path, scheme_label: &str) {
    let cfg = GpuConfig::default();
    let scheme = Scheme::by_label(scheme_label).unwrap_or_else(|| {
        eprintln!("unknown scheme {scheme_label:?}");
        std::process::exit(2);
    });
    let trace = Trace::load_file(path, &cfg).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    let t0 = Instant::now();
    let report = TraceSim::new(&cfg, &scheme.sched()).replay(&trace).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    println!(
        "replayed {} of {} requests under {} in {:.3}s ({} memory cycles)",
        report.served,
        trace.len(),
        scheme.label(),
        t0.elapsed().as_secs_f64(),
        report.replay_cycles
    );
    println!("  activations {:>10}", report.stats.dram.activations);
    println!("  Avg-RBL     {:>10.2}", report.stats.dram.avg_rbl());
    println!("  coverage    {:>9.1}%", 100.0 * report.stats.dram.coverage());
    println!("  row energy  {:>9.1} µJ", row_energy(&report.stats) / 1e6);
    if report.unserved > 0 {
        eprintln!("REPLAY INCOMPLETE: {} requests unserved", report.unserved);
        std::process::exit(1);
    }
}

/// The validation harness: for every paper scheme, compare the
/// execution-driven run against an open-loop replay of the baseline trace.
fn cmd_envelope(app: &AppSpec, scale: f64) {
    let cfg = GpuConfig::default();
    let (trace, _, _) = capture(app, scale);
    println!(
        "{}: replayed-vs-executed error envelope (scale {scale}, {} recorded requests)",
        app.name,
        trace.len()
    );
    let mut rows = Vec::new();
    let mut worst: f64 = 0.0;
    for scheme in Scheme::PAPER {
        let exec = SimBuilder::new(app).scheme(scheme).scale(scale).build().run().stats;
        let report = TraceSim::new(&cfg, &scheme.sched())
            .replay(&trace)
            .unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(report.unserved, 0, "replay must serve every request");
        let act = rel_err(report.stats.dram.activations as f64, exec.dram.activations as f64);
        let rbl = rel_err(report.stats.dram.avg_rbl(), exec.dram.avg_rbl());
        let nrg = rel_err(row_energy(&report.stats), row_energy(&exec));
        worst = worst.max(act).max(rbl).max(nrg);
        rows.push(vec![
            scheme.label().to_string(),
            exec.dram.activations.to_string(),
            report.stats.dram.activations.to_string(),
            format!("{:.1}%", 100.0 * act),
            format!("{:.1}%", 100.0 * rbl),
            format!("{:.1}%", 100.0 * nrg),
        ]);
    }
    print_table(
        &format!("{} open-loop error envelope", app.name),
        &["scheme", "exec acts", "replay acts", "act err", "rbl err", "energy err"],
        &rows,
    );
    println!("\nworst relative error across schemes/metrics: {:.1}%", 100.0 * worst);
}

/// Timed fig04-style delay sweep, executed vs capture-once-replay-many.
fn cmd_sweep(app: &AppSpec, scale: f64) {
    let cfg = GpuConfig::default();
    let delays = [64u32, 128, 256, 512, 1024, 2048];
    let (trace, _, capture_s) = capture(app, scale);
    let mut exec_s = 0.0;
    let mut replay_s = 0.0;
    let mut rows = Vec::new();
    for &x in &delays {
        let sched = SchedConfig { dms: DmsMode::Static(x), ..SchedConfig::baseline() };
        let t0 = Instant::now();
        let exec =
            SimBuilder::new(app).sched(sched.clone(), format!("DMS({x})")).scale(scale).build().run().stats;
        let te = t0.elapsed().as_secs_f64();
        exec_s += te;
        let t0 = Instant::now();
        let report = TraceSim::new(&cfg, &sched).replay(&trace).unwrap_or_else(|e| panic!("{e}"));
        let tr = t0.elapsed().as_secs_f64();
        replay_s += tr;
        assert_eq!(report.unserved, 0, "replay must serve every request");
        rows.push(vec![
            format!("DMS({x})"),
            format!("{te:.3}s"),
            format!("{tr:.3}s"),
            format!("{:.1}x", te / tr.max(1e-9)),
            format!(
                "{:.1}%",
                100.0 * rel_err(report.stats.dram.activations as f64, exec.dram.activations as f64)
            ),
        ]);
    }
    print_table(
        &format!("{} delay sweep: executed vs replayed (scale {scale})", app.name),
        &["cell", "exec", "replay", "speedup", "act err"],
        &rows,
    );
    println!(
        "\nsweep totals: executed {exec_s:.3}s, replayed {replay_s:.3}s \
         ({:.1}x; {:.1}x counting the {capture_s:.3}s capture run)",
        exec_s / replay_s.max(1e-9),
        exec_s / (replay_s + capture_s).max(1e-9),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("capture") if args.len() >= 3 => {
            cmd_capture(&app_or_exit(&args[1]), Path::new(&args[2]), parse_scale(&args, 3));
        }
        Some("replay") if args.len() >= 2 => {
            cmd_replay(Path::new(&args[1]), args.get(2).map_or("baseline", String::as_str));
        }
        Some("envelope") if args.len() >= 2 => {
            cmd_envelope(&app_or_exit(&args[1]), parse_scale(&args, 2));
        }
        Some("sweep") if args.len() >= 2 => {
            cmd_sweep(&app_or_exit(&args[1]), parse_scale(&args, 2));
        }
        _ => {
            eprintln!(
                "usage: dbg_trace <capture APP FILE [SCALE] | replay FILE [SCHEME] | \
                 envelope APP [SCALE] | sweep APP [SCALE]>"
            );
            std::process::exit(2);
        }
    }
}
