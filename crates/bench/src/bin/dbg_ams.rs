//! AMS decline-reason diagnosis per app.
use lazydram_bench::{Scheme, SimBuilder};
use lazydram_workloads::by_name;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1.0);
    println!("{:>12} | accepts off warm napprox delay cover writes above | cov", "app");
    for name in &args[2..] {
        let app = by_name(name).expect("app");
        let r = SimBuilder::new(&app).scheme(Scheme::StaticAms).scale(scale).build().run();
        let d = &r.stats.ams_declines;
        println!(
            "{:>12} | {:>7} {:?} | {:.1}%",
            app.name, r.stats.ams_accepts, d, 100.0 * r.stats.dram.coverage()
        );
    }
}
