//! Compares all paper schemes on a handful of apps (quick sanity harness).

use lazydram_bench::{measure, measure_baseline, pct, Scheme, SimBuilder};
use lazydram_common::GpuConfig;
use lazydram_workloads::by_name;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let names: Vec<String> = if args.len() > 2 { args[2..].to_vec() } else { vec!["CONS".into()] };
    let cfg = GpuConfig::default();
    for name in names {
        let app = by_name(&name).expect("known app");
        let t0 = Instant::now();
        let (base, exact) = measure_baseline(&app, &cfg, scale);
        println!("\n{name}: baseline acts={} ipc={:.3} avgRBL={:.2} ({:?})",
                 base.activations, base.ipc, base.avg_rbl, t0.elapsed());
        for scheme in Scheme::PAPER {
            let t = Instant::now();
            let run = SimBuilder::new(&app).gpu(cfg.clone()).scheme(scheme).scale(scale).build();
            let m = measure(&run, &exact);
            println!(
                "  {label:>22}: acts {:>8} ({:>6}) ipc {:>6.3} ({:>6}) cov {:>5} err {:>6} avgRBL {:>5.2} [{:?}]",
                m.activations,
                pct(m.activations as f64 / base.activations as f64),
                m.ipc,
                pct(m.ipc / base.ipc),
                pct(m.coverage),
                pct(m.app_error),
                m.avg_rbl,
                t.elapsed(),
                label = scheme.label(),
            );
        }
    }
}
