//! Divergence bisection: pinpoints the first cycle at which two
//! configurations of the same app leave a common trajectory, then prints a
//! component-level diff of the two machine states at that cycle.
//!
//! The tool runs both configurations in lockstep through chained
//! checkpoints (stride cycles at a time), comparing a *comparable digest*
//! of each checkpoint — the full architectural state minus the frames that
//! differ by construction (the `meta` config digest and the per-controller
//! `dms`/`ams` policy state). When a stride window shows a digest mismatch,
//! it binary-searches inside the window, resuming from the last agreeing
//! checkpoints, until the exact first divergent cycle is found.
//!
//! ```text
//! dbg_diverge [APP] [X1] [X2] [SCALE] [STRIDE]
//! dbg_diverge --cores A:B [APP] [X1] [SCALE] [STRIDE]
//! ```
//!
//! Defaults: `SLA 128 256 0.05 4096` — Static-DMS with delay X1 vs X2.
//!
//! With `--cores A:B` the tool instead compares the *same* configuration
//! (Static-DMS X1) executed at two worker-pool widths. Any width must be
//! bit-identical to any other by construction (DESIGN.md §12), so this mode
//! compares the **strict whole-checkpoint digest** — no frame is excused,
//! `meta` and the `dms`/`ams` policy state included — and any divergence at
//! all is a parallelism bug whose first cycle this pinpoints.

use lazydram_bench::SimBuilder;
use lazydram_common::snap::{digest, fold, list_frames};
use lazydram_common::{DmsMode, SchedConfig};
use lazydram_gpu::{Checkpoint, RunOutcome};
use lazydram_workloads::{by_name, SimRun};
use std::collections::BTreeMap;

/// Digest over the architectural frames only: `meta` (holds the config
/// digest, different by construction) is skipped entirely, and the
/// per-controller `dms`/`ams` subframes (the policy parameters and their
/// windowed profiling state) are skipped inside each `mc` frame. What
/// remains — queues, DRAM banks, SMs, caches, NoC, stats, memory image —
/// agrees between two configs exactly until the policies first *act*
/// differently.
fn comparable_digest(ck: &Checkpoint) -> u64 {
    let body = ck.body();
    let mut h = 0x5EED_D1FF_u64;
    for f in list_frames(body).expect("checkpoint frames") {
        if f.tag == "meta" {
            continue;
        }
        let payload = f.payload(body);
        h = fold(h, digest(f.tag.as_bytes()));
        h = fold(h, u64::from(f.index));
        if f.tag == "mc" {
            for sub in list_frames(payload).expect("mc subframes") {
                if sub.tag == "dms" || sub.tag == "ams" {
                    continue;
                }
                h = fold(h, digest(sub.payload(payload)));
            }
        } else {
            h = fold(h, digest(payload));
        }
    }
    h
}

/// Advances one run to `target` cycles, either from the start or from a
/// checkpoint at an earlier cycle.
fn step(run: &SimRun, from: Option<&Checkpoint>, target: u64) -> RunOutcome {
    match from {
        None => run.run_until(target),
        Some(ck) => run.resume_until(ck, target).expect("resume own checkpoint"),
    }
}

/// State probe for the bisection: a paused run compares by digest —
/// comparable (policy frames excused) in DMS mode, strict whole-checkpoint
/// in `--cores` mode — while a completed run compares by completion shape
/// (cycle count and output digest), so an early finish on one side
/// registers as divergence.
fn probe(
    run: &SimRun,
    from: Option<&Checkpoint>,
    target: u64,
    strict: bool,
) -> (u64, Option<Checkpoint>) {
    match step(run, from, target) {
        RunOutcome::Paused(ck) => {
            let d = if strict { ck.digest() } else { comparable_digest(&ck) };
            (d, Some(ck))
        }
        RunOutcome::Done(r) => {
            let mut h = fold(0xD0E_u64, r.stats.core_cycles);
            for v in &r.output {
                h = fold(h, u64::from(v.to_bits()));
            }
            (h, None)
        }
    }
}

fn frame_diff(a: &Checkpoint, b: &Checkpoint, strict: bool) -> Vec<String> {
    let (ba, bb) = (a.body(), b.body());
    let fa = list_frames(ba).expect("frames");
    let fb = list_frames(bb).expect("frames");
    let mut out = Vec::new();
    for (x, y) in fa.iter().zip(&fb) {
        assert_eq!((&x.tag, x.index), (&y.tag, y.index), "frame layout mismatch");
        if x.tag == "meta" && !strict {
            continue;
        }
        let (pa, pb) = (x.payload(ba), y.payload(bb));
        if x.tag == "mc" {
            for (sx, sy) in list_frames(pa)
                .expect("mc subframes")
                .iter()
                .zip(&list_frames(pb).expect("mc subframes"))
            {
                if (sx.tag == "dms" || sx.tag == "ams") && !strict {
                    continue;
                }
                if sx.payload(pa) != sy.payload(pb) {
                    out.push(format!("mc[{}].{}", x.index, sx.tag));
                }
            }
        } else if pa != pb {
            out.push(format!("{}[{}]", x.tag, x.index));
        }
    }
    out
}

/// `true` for field paths that differ by construction between the two
/// configurations (policy parameters / policy-internal profiling state),
/// as opposed to architectural state that should agree until divergence.
fn expected_diff(path: &str, strict: bool) -> bool {
    !strict && (path.starts_with("meta") || path.contains("/dms[") || path.contains("/ams["))
}

fn field_diff(run_a: &SimRun, ck_a: &Checkpoint, run_b: &SimRun, ck_b: &Checkpoint, strict: bool) {
    let fields_a: BTreeMap<String, String> =
        run_a.checkpoint_fields(ck_a).expect("fields").into_iter().collect();
    let fields_b: BTreeMap<String, String> =
        run_b.checkpoint_fields(ck_b).expect("fields").into_iter().collect();
    let mut architectural = 0usize;
    println!("\nfield-level diff (architectural state; policy/config fields marked *):");
    for (path, va) in &fields_a {
        let Some(vb) = fields_b.get(path) else {
            if expected_diff(path, strict) {
                println!("  * {path}: only in first run ({va})   (expected: policy config/state)");
            } else {
                println!("    {path}: only in first run ({va})");
            }
            continue;
        };
        if va == vb {
            continue;
        }
        if expected_diff(path, strict) {
            println!("  * {path}: {va} vs {vb}   (expected: policy config/state)");
        } else {
            architectural += 1;
            if architectural <= 40 {
                println!("    {path}: {va} vs {vb}");
            }
        }
    }
    if architectural > 40 {
        println!("    … and {} more architectural field diffs", architectural - 40);
    }
    println!("\n{architectural} architectural field(s) differ at the divergence cycle");
}

/// Parses `A:B` (two positive integers) from a `--cores` value.
fn parse_cores_pair(s: &str) -> Option<(usize, usize)> {
    let (a, b) = s.split_once(':')?;
    match (a.trim().parse().ok()?, b.trim().parse().ok()?) {
        (a, b) if a >= 1 && b >= 1 => Some((a, b)),
        _ => None,
    }
}

fn main() {
    // `--cores A:B` (or `--cores=A:B`) may appear anywhere; the remaining
    // positional arguments keep their usual order.
    let mut cores_pair: Option<(usize, usize)> = None;
    let mut args: Vec<String> = Vec::new();
    let mut raw = std::env::args().skip(1);
    while let Some(arg) = raw.next() {
        let value = if arg == "--cores" {
            raw.next().unwrap_or_default()
        } else if let Some(v) = arg.strip_prefix("--cores=") {
            v.to_string()
        } else {
            args.push(arg);
            continue;
        };
        cores_pair = Some(
            parse_cores_pair(&value)
                .unwrap_or_else(|| panic!("--cores wants A:B with A, B >= 1, got {value:?}")),
        );
    }

    let name = args.first().cloned().unwrap_or_else(|| "SLA".into());
    let x1: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(128);
    // In `--cores` mode both runs share one config, so the X2 slot drops out
    // and the remaining positionals shift left.
    let (x2, rest) = match cores_pair {
        Some(_) => (x1, &args[2.min(args.len())..]),
        None => (
            args.get(2).and_then(|s| s.parse().ok()).unwrap_or(256),
            &args[3.min(args.len())..],
        ),
    };
    let scale: f64 = rest.first().and_then(|s| s.parse().ok()).unwrap_or(0.05);
    let stride: u64 = rest.get(1).and_then(|s| s.parse().ok()).unwrap_or(4096).max(2);
    let app = by_name(&name).expect("known app");
    let strict = cores_pair.is_some();

    let build = |x: u32, cores: Option<usize>| {
        let mut b = SimBuilder::new(&app)
            .sched(
                SchedConfig { dms: DmsMode::Static(x), ..SchedConfig::baseline() },
                format!("DMS({x})"),
            )
            .scale(scale);
        if let Some(cores) = cores {
            b = b.cores(cores);
        }
        b.build()
    };
    let (run_a, run_b, label_a, label_b) = match cores_pair {
        Some((a, b)) => (
            build(x1, Some(a)),
            build(x1, Some(b)),
            format!("cores={a}"),
            format!("cores={b}"),
        ),
        None => (
            build(x1, None),
            build(x2, None),
            format!("DMS({x1})"),
            format!("DMS({x2})"),
        ),
    };
    match cores_pair {
        Some((a, b)) => println!(
            "{name} @ scale {scale}: bisecting Static-DMS X={x1} at cores={a} vs cores={b} \
             (stride {stride}, strict whole-state digests)"
        ),
        None => println!(
            "{name} @ scale {scale}: bisecting Static-DMS X={x1} vs X={x2} (stride {stride})"
        ),
    }

    // Phase 1: lockstep coarse scan. `lo` is the last cycle where the two
    // comparable digests agreed; the checkpoints at `lo` seed the bisection.
    let mut lo = 0u64;
    let mut ck_a: Option<Checkpoint> = None;
    let mut ck_b: Option<Checkpoint> = None;
    let hi = loop {
        let target = lo + stride;
        let (da, na) = probe(&run_a, ck_a.as_ref(), target, strict);
        let (db, nb) = probe(&run_b, ck_b.as_ref(), target, strict);
        if da != db {
            break target;
        }
        match (na, nb) {
            (Some(a), Some(b)) => {
                lo = target;
                ck_a = Some(a);
                ck_b = Some(b);
            }
            _ => {
                // Both runs completed with identical completion shape and no
                // digest mismatch at any stride boundary.
                println!(
                    "no divergence detected up to completion at stride {stride}; \
                     the runs agree at every probed cycle"
                );
                return;
            }
        }
    };
    println!("digests agree at cycle {lo}, differ by cycle {hi} — bisecting…");

    // Phase 2: binary search in (lo, hi], always resuming from the agreeing
    // checkpoints at `lo`. Invariant: digests agree at `lo`, differ at `hi`.
    let mut hi = hi;
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        let (da, na) = probe(&run_a, ck_a.as_ref(), mid, strict);
        let (db, nb) = probe(&run_b, ck_b.as_ref(), mid, strict);
        if da == db {
            lo = mid;
            if let (Some(a), Some(b)) = (na, nb) {
                ck_a = Some(a);
                ck_b = Some(b);
            }
        } else {
            hi = mid;
        }
    }
    println!("first divergent cycle: {hi} (last agreeing cycle: {lo})");

    // Phase 3: component- and field-level diff at the divergence cycle.
    let at_a = step(&run_a, ck_a.as_ref(), hi);
    let at_b = step(&run_b, ck_b.as_ref(), hi);
    match (at_a, at_b) {
        (RunOutcome::Paused(a), RunOutcome::Paused(b)) => {
            let diff = frame_diff(&a, &b, strict);
            println!("\ndivergent components at cycle {hi}:");
            for d in &diff {
                println!("  {d}");
            }
            if diff.is_empty() {
                println!("  (none at frame granularity — divergence is in completion shape)");
            }
            field_diff(&run_a, &a, &run_b, &b, strict);
        }
        (RunOutcome::Done(ra), RunOutcome::Done(rb)) => {
            println!(
                "both runs complete before cycle {hi}: {} vs {} total cycles",
                ra.stats.core_cycles, rb.stats.core_cycles
            );
        }
        (RunOutcome::Done(r), RunOutcome::Paused(_)) => {
            println!(
                "{label_a} completes at cycle {} while {label_b} is still running",
                r.stats.core_cycles
            );
        }
        (RunOutcome::Paused(_), RunOutcome::Done(r)) => {
            println!(
                "{label_b} completes at cycle {} while {label_a} is still running",
                r.stats.core_cycles
            );
        }
    }
}
