//! Prints the baseline RBL histogram skew (Figure 6 precursor) per app.
use lazydram_bench::{Scheme, SimBuilder};
use lazydram_workloads::{all_apps, by_name};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let apps = if args.len() > 2 {
        args[2..].iter().map(|n| by_name(n).expect("app")).collect()
    } else {
        all_apps()
    };
    println!("{:>12} {:>8} {:>7} | req% in RBL(1-2) -> act% | req% RBL(1-8) -> act%", "app", "acts", "avgRBL");
    for app in apps {
        let r = SimBuilder::new(&app).scheme(Scheme::Baseline).scale(scale).build().run();
        let h = &r.stats.dram.rbl;
        let tot_req = h.requests().max(1);
        let tot_act = h.activations().max(1);
        let req12: u64 = (1..=2).map(|k| k as u64 * h.count(k)).sum();
        let act12 = h.count_range(1, 2);
        let req18: u64 = (1..=8).map(|k| k as u64 * h.count(k)).sum();
        let act18 = h.count_range(1, 8);
        println!(
            "{:>12} {:>8} {:>7.2} |  {:>5.1}% -> {:>5.1}%  |  {:>5.1}% -> {:>5.1}%   (ro-acts {:>5.1}%)",
            app.name, tot_act, h.avg_rbl(),
            100.0 * req12 as f64 / tot_req as f64, 100.0 * act12 as f64 / tot_act as f64,
            100.0 * req18 as f64 / tot_req as f64, 100.0 * act18 as f64 / tot_act as f64,
            100.0 * r.stats.dram.rbl_read_only.activations() as f64 / tot_act as f64,
        );
    }
}
