//! Quick calibration binary: times one app per program shape at a given
//! scale and prints the key statistics, so bench scales can be tuned.

use lazydram_bench::measure_baseline;
use lazydram_common::GpuConfig;
use lazydram_workloads::by_name;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.25);
    let names: Vec<String> = if args.len() > 2 {
        args[2..].to_vec()
    } else {
        vec!["CONS".into(), "GEMM".into(), "MVT".into(), "SCP".into(), "LPS".into(), "RAY".into()]
    };
    let cfg = GpuConfig::default();
    println!("scale = {scale}");
    for name in names {
        let app = by_name(&name).expect("known app");
        let t0 = Instant::now();
        let (m, _) = measure_baseline(&app, &cfg, scale);
        let dt = t0.elapsed();
        println!(
            "{:>12}: {:>7.2?}  cycles={:>9} ipc={:>6.2} acts={:>8} avgRBL={:>5.2} reads={:>8} writes={:>8} l2miss={:>8} trunc={}",
            name, dt, m.stats.core_cycles, m.ipc, m.activations, m.avg_rbl,
            m.stats.dram.reads, m.stats.dram.writes, m.stats.l2_misses, m.truncated
        );
    }
}
