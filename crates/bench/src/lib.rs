//! Shared harness utilities for the figure/table benchmarks.
//!
//! Each `benches/figNN_*.rs` target (built with `harness = false`) prints the
//! rows/series of one table or figure of the paper. This library holds the
//! common machinery: running an app under a scheme, collecting the metrics
//! the paper reports, and formatting aligned tables.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use lazydram_common::{GpuConfig, SchedConfig, SimStats};
use lazydram_energy::{EnergyModel, MemoryTech};
use lazydram_gpu::{application_error, SimLimits};
use lazydram_workloads::{exact_output, run_app_limited, AppSpec};

/// Default work scale for the benchmark harnesses. Chosen so the whole
/// evaluation runs on a laptop in minutes while every app still issues
/// 10⁴–10⁵ DRAM requests.
pub const BENCH_SCALE: f64 = 1.0;

/// Work scale for harness runs: `LAZYDRAM_SCALE` env var or [`BENCH_SCALE`].
pub fn scale_from_env() -> f64 {
    std::env::var("LAZYDRAM_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(BENCH_SCALE)
}

/// The application list for a harness run: all 20, or the comma-separated
/// names in `LAZYDRAM_APPS`.
pub fn apps_from_env() -> Vec<lazydram_workloads::AppSpec> {
    match std::env::var("LAZYDRAM_APPS") {
        Ok(list) if !list.trim().is_empty() => list
            .split(',')
            .map(|n| {
                lazydram_workloads::by_name(n.trim())
                    .unwrap_or_else(|| panic!("unknown app {n:?} in LAZYDRAM_APPS"))
            })
            .collect(),
        _ => lazydram_workloads::all_apps(),
    }
}

/// Aggregate DRAM data-bus utilization of a run: busy cycles across all
/// channels over `channels × elapsed memory cycles`.
pub fn bw_util(stats: &SimStats, channels: usize) -> f64 {
    let cycles = stats.dram.mem_cycles.max(1) * channels as u64;
    stats.dram.bus_busy_cycles as f64 / cycles as f64
}

/// All metrics the paper reports for one (app, scheme) run.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Measurement {
    /// Application name.
    pub app: String,
    /// Scheme label (e.g. `"Dyn-DMS+Dyn-AMS"`).
    pub scheme: String,
    /// Raw statistics.
    pub stats: SimStats,
    /// Instructions per core cycle.
    pub ipc: f64,
    /// Row activations.
    pub activations: u64,
    /// Average row-buffer locality (served requests / activations).
    pub avg_rbl: f64,
    /// Achieved prediction coverage.
    pub coverage: f64,
    /// Application error vs. the exact output (0 when no approximation).
    pub app_error: f64,
    /// GDDR5 row energy, pJ.
    pub row_energy_pj: f64,
    /// `true` if the run hit the safety cycle limit.
    pub truncated: bool,
}

/// Runs one app under one scheme and collects every reported metric.
///
/// `exact` is the functional reference output (compute it once per app with
/// [`lazydram_workloads::exact_output`] and share it across schemes).
pub fn measure(
    app: &AppSpec,
    cfg: &GpuConfig,
    sched: &SchedConfig,
    scale: f64,
    scheme_label: &str,
    exact: &[f32],
) -> Measurement {
    let run = run_app_limited(app, cfg, sched, scale, SimLimits::default());
    let energy = EnergyModel::new(MemoryTech::Gddr5);
    let row_energy_pj = energy.breakdown(&run.stats.dram).row_energy_pj;
    Measurement {
        app: app.name.to_string(),
        scheme: scheme_label.to_string(),
        ipc: run.stats.ipc(),
        activations: run.stats.dram.activations,
        avg_rbl: run.stats.dram.avg_rbl(),
        coverage: run.stats.dram.coverage(),
        app_error: application_error(exact, &run.output),
        row_energy_pj,
        truncated: run.hit_cycle_limit,
        stats: run.stats,
    }
}

/// Convenience: the baseline measurement plus its exact output.
pub fn measure_baseline(app: &AppSpec, cfg: &GpuConfig, scale: f64) -> (Measurement, Vec<f32>) {
    let exact = exact_output(app, scale);
    let m = measure(app, cfg, &SchedConfig::baseline(), scale, "baseline", &exact);
    (m, exact)
}

/// Geometric-mean helper (the paper reports means across applications).
///
/// # Panics
///
/// Panics if any value is non-positive.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(values.iter().all(|&v| v > 0.0), "geomean needs positive values");
    if values.is_empty() {
        return 1.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Arithmetic mean.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Prints an aligned table: a header row and rows of cells.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats a ratio as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Serializes measurements to pretty JSON (for downstream plotting).
///
/// # Panics
///
/// Panics if serialization fails (statically impossible for these types).
pub fn to_json(measurements: &[Measurement]) -> String {
    serde_json::to_string_pretty(measurements).expect("measurements serialize")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_and_mean() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 1.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        let _ = geomean(&[1.0, 0.0]);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.443), "44.3%");
    }
}
