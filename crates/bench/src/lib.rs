//! Shared harness utilities for the figure/table benchmarks.
//!
//! Each `benches/figNN_*.rs` target (built with `harness = false`) prints the
//! rows/series of one table or figure of the paper. This library holds the
//! common machinery: running an app under a scheme, collecting the metrics
//! the paper reports, formatting aligned tables, and — via [`runner`] — the
//! parallel sweep runner that fans `(app × scheme)` jobs across a worker
//! pool with panic isolation.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use lazydram_common::{DramPreset, GpuConfig, SimStats};
use lazydram_gpu::{application_error, Trace};
use lazydram_workloads::{exact_output, AppSpec};

pub mod runner;
pub mod store;

pub use lazydram_common::Scheme;
pub use lazydram_energy::{EnergyModel, MemoryTech};
pub use lazydram_gpu::{ReplayReport, TraceError, TraceSim};
pub use lazydram_workloads::{
    parse_backend, parse_cache_mode, parse_checkpoint_every, parse_trace_mode, CacheMode,
    CachePolicy, CheckpointPolicy, SimBuilder, SimRun, TraceMode, TracePolicy,
    DEFAULT_CHECKPOINT_EVERY,
};
pub use runner::{Baseline, Job, JobFailure, JobResult, MeasureSpec, SweepRunner};
pub use store::{CacheStats, EntryInfo, Fidelity, Store};

/// Default work scale for the benchmark harnesses. Chosen so the whole
/// evaluation runs on a laptop in minutes while every app still issues
/// 10⁴–10⁵ DRAM requests.
pub const BENCH_SCALE: f64 = 1.0;

/// Parses a `LAZYDRAM_SCALE` value: must be a finite, positive number.
///
/// Kept separate from [`scale_from_env`] so the validation is unit-testable.
pub fn parse_scale(s: &str) -> Result<f64, String> {
    match s.trim().parse::<f64>() {
        Err(_) => Err(format!(
            "LAZYDRAM_SCALE={s:?} is not a number; expected a positive work \
             scale such as 0.5 or 1.0"
        )),
        Ok(v) if !v.is_finite() || v <= 0.0 => Err(format!(
            "LAZYDRAM_SCALE={s:?} must be a finite, positive work scale \
             (e.g. 0.5 for a half-size run); got {v}"
        )),
        Ok(v) => Ok(v),
    }
}

/// Work scale for harness runs: `LAZYDRAM_SCALE` env var or [`BENCH_SCALE`].
///
/// # Panics
///
/// Panics on a malformed or non-positive `LAZYDRAM_SCALE` instead of
/// silently falling back to a full-scale (potentially hours-long) run.
pub fn scale_from_env() -> f64 {
    match std::env::var("LAZYDRAM_SCALE") {
        Ok(s) => parse_scale(&s).unwrap_or_else(|e| panic!("{e}")),
        Err(_) => BENCH_SCALE,
    }
}

/// Parses a comma-separated `LAZYDRAM_APPS` list into app specs.
///
/// Unknown names produce an error listing every valid name.
pub fn parse_apps(list: &str) -> Result<Vec<AppSpec>, String> {
    list.split(',')
        .map(|n| {
            let n = n.trim();
            lazydram_workloads::by_name(n).ok_or_else(|| {
                let valid: Vec<&str> =
                    lazydram_workloads::all_apps().iter().map(|a| a.name).collect();
                format!(
                    "unknown app {n:?} in LAZYDRAM_APPS; valid names (case-insensitive): {}",
                    valid.join(", ")
                )
            })
        })
        .collect()
}

/// The application list for a harness run: all 20, or the comma-separated
/// names in `LAZYDRAM_APPS`.
///
/// # Panics
///
/// Panics on an unknown app name, listing the valid names.
pub fn apps_from_env() -> Vec<AppSpec> {
    match std::env::var("LAZYDRAM_APPS") {
        Ok(list) if !list.trim().is_empty() => {
            parse_apps(&list).unwrap_or_else(|e| panic!("{e}"))
        }
        _ => lazydram_workloads::all_apps(),
    }
}

/// The DRAM backend preset for a harness run: `LAZYDRAM_BACKEND` env var
/// (a [`DramPreset`] label such as `gddr5`, `ddr4` or `flex`) or the
/// default GDDR5 machine.
///
/// # Panics
///
/// Panics on a malformed `LAZYDRAM_BACKEND` instead of silently sweeping
/// the wrong memory model.
pub fn backend_from_env() -> DramPreset {
    match std::env::var("LAZYDRAM_BACKEND") {
        Ok(s) => parse_backend(&s).unwrap_or_else(|e| panic!("{e}")),
        Err(_) => DramPreset::Gddr5,
    }
}

/// The machine configuration for a harness run: [`backend_from_env`]'s
/// preset expanded to its full [`GpuConfig`] (geometry + timings + backend
/// model). Figure harnesses use this instead of `GpuConfig::default()` so
/// `LAZYDRAM_BACKEND=<label>` re-runs any figure on any backend.
pub fn gpu_config_from_env() -> GpuConfig {
    backend_from_env().gpu_config()
}

/// Aggregate DRAM data-bus utilization of a run: busy cycles across all
/// channels over `channels × elapsed memory cycles`.
pub fn bw_util(stats: &SimStats, channels: usize) -> f64 {
    let cycles = stats.dram.mem_cycles.max(1) * channels as u64;
    stats.dram.bus_busy_cycles as f64 / cycles as f64
}

/// All metrics the paper reports for one (app, scheme) run.
///
/// Equality compares every reported field (via [`SimStats`]'s equality,
/// which ignores the wall-clock profiler attribution).
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Application name.
    pub app: String,
    /// Scheme label (e.g. `"Dyn-DMS+Dyn-AMS"`).
    pub scheme: String,
    /// Raw statistics.
    pub stats: SimStats,
    /// Instructions per core cycle.
    pub ipc: f64,
    /// Row activations.
    pub activations: u64,
    /// Average row-buffer locality (served requests / activations).
    pub avg_rbl: f64,
    /// Achieved prediction coverage.
    pub coverage: f64,
    /// Application error vs. the exact output (0 when no approximation).
    pub app_error: f64,
    /// GDDR5 row energy, pJ.
    pub row_energy_pj: f64,
    /// `true` if the run hit the safety cycle limit.
    pub truncated: bool,
    /// `true` when this measurement came from open-loop trace replay
    /// (MC + DRAM only): the DRAM-side metrics are real, but `ipc` and
    /// `app_error` are reported as 0 — replay never runs the GPU.
    pub replayed: bool,
    /// `true` when this measurement was served from the content-addressed
    /// result store ([`store::Store`]) instead of being simulated.
    ///
    /// In-process provenance only: deliberately **excluded** from
    /// [`Measurement::to_json`] and the store's serialized bytes, so a warm
    /// sweep's stdout tables and `LAZYDRAM_RESULTS` JSONL are byte-identical
    /// to a cold one. Surfaces on stderr progress notes and in the
    /// end-of-sweep cache summary instead.
    pub cached: bool,
}

impl Measurement {
    /// Serializes the measurement as one schema-stable JSON object — the
    /// record format of the `LAZYDRAM_RESULTS` JSONL file.
    ///
    /// Schema (stable; only additive changes allowed):
    /// `record`, `app`, `scheme`, `ipc`, `activations`, `avg_rbl`,
    /// `coverage`, `app_error`, `row_energy_pj`, `truncated`, `replayed`,
    /// `stats{…}`.
    pub fn to_json(&self) -> String {
        let mut o = lazydram_common::json::JsonObject::new();
        o.str("record", "measurement")
            .str("app", &self.app)
            .str("scheme", &self.scheme)
            .f64("ipc", self.ipc)
            .u64("activations", self.activations)
            .f64("avg_rbl", self.avg_rbl)
            .f64("coverage", self.coverage)
            .f64("app_error", self.app_error)
            .f64("row_energy_pj", self.row_energy_pj)
            .bool("truncated", self.truncated)
            .bool("replayed", self.replayed)
            .raw("stats", &self.stats.to_json());
        o.finish()
    }
}

/// Runs a configured simulation and collects every reported metric.
///
/// `exact` is the functional reference output (compute it once per app with
/// [`lazydram_workloads::exact_output`] and share it across schemes — the
/// [`SweepRunner`] baseline cache does this automatically). Checkpoint-IO
/// failures on a crash-recoverable run panic; [`try_measure`] surfaces them
/// as `Err` instead.
pub fn measure(run: &SimRun, exact: &[f32]) -> Measurement {
    try_measure(run, exact).unwrap_or_else(|e| panic!("{e}"))
}

/// [`measure`], surfacing checkpoint-IO failures as `Err` (the sweep runner
/// records them as [`JobFailure`] rows instead of aborting the sweep).
pub fn try_measure(run: &SimRun, exact: &[f32]) -> Result<Measurement, String> {
    try_measure_traced(run, exact).map(|(m, _)| m)
}

/// [`try_measure`], also returning the captured request trace when the run
/// was built with `.trace(true)` (the sweep runner persists it into the
/// trace store).
///
/// # Errors
///
/// Checkpoint-IO failures, as for [`try_measure`].
pub fn try_measure_traced(
    run: &SimRun,
    exact: &[f32],
) -> Result<(Measurement, Option<Trace>), String> {
    let r = run.run_recoverable()?;
    let energy = EnergyModel::new(MemoryTech::for_backend(run.backend()));
    let row_energy_pj = energy.breakdown(&r.stats.dram).row_energy_pj;
    let m = Measurement {
        app: run.app().name.to_string(),
        scheme: run.scheme_label().to_string(),
        ipc: r.stats.ipc(),
        activations: r.stats.dram.activations,
        avg_rbl: r.stats.dram.avg_rbl(),
        coverage: r.stats.dram.coverage(),
        app_error: application_error(exact, &r.output),
        row_energy_pj,
        truncated: r.hit_cycle_limit,
        replayed: false,
        cached: false,
        stats: r.stats,
    };
    Ok((m, r.trace))
}

/// Measures one sweep cell by open-loop trace replay instead of running the
/// GPU: the captured request stream goes through fresh controllers under
/// the run's scheduling policy and machine config. DRAM-side metrics
/// (activations, Avg-RBL, coverage, row energy) are real; `ipc` and
/// `app_error` are 0 since replay has no core side — see the
/// [`Measurement::replayed`] flag.
///
/// # Errors
///
/// A malformed/incompatible trace, or **any** unserved request (an
/// incomplete replay is never silently reported as a smaller result).
pub fn try_measure_replay(run: &SimRun, trace: &Trace) -> Result<Measurement, String> {
    let report = run
        .replay_trace(trace)
        .and_then(lazydram_gpu::ReplayReport::complete)
        .map_err(|e| e.to_string())?;
    let energy = EnergyModel::new(MemoryTech::for_backend(run.backend()));
    let row_energy_pj = energy.breakdown(&report.stats.dram).row_energy_pj;
    Ok(Measurement {
        app: run.app().name.to_string(),
        scheme: run.scheme_label().to_string(),
        ipc: 0.0,
        activations: report.stats.dram.activations,
        avg_rbl: report.stats.dram.avg_rbl(),
        coverage: report.stats.dram.coverage(),
        app_error: 0.0,
        row_energy_pj,
        truncated: false,
        replayed: true,
        cached: false,
        stats: report.stats,
    })
}

/// Convenience: the baseline measurement plus its exact output.
///
/// Sequential helper kept for tests and one-off tools; sweeping harnesses
/// should use [`SweepRunner::baselines`], which computes each `(app, scale)`
/// baseline exactly once and shares it across schemes.
pub fn measure_baseline(app: &AppSpec, cfg: &GpuConfig, scale: f64) -> (Measurement, Vec<f32>) {
    let exact = exact_output(app, scale);
    let run = SimBuilder::new(app)
        .gpu(cfg.clone())
        .scheme(Scheme::Baseline)
        .scale(scale)
        .build();
    let m = measure(&run, &exact);
    (m, exact)
}

/// Geometric-mean helper (the paper reports means across applications).
///
/// # Panics
///
/// Panics if any value is non-positive.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(values.iter().all(|&v| v > 0.0), "geomean needs positive values");
    if values.is_empty() {
        return 1.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Arithmetic mean.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Prints an aligned table: a header row and rows of cells.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats a ratio as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Serializes measurements as a JSON array (for downstream plotting).
pub fn to_json(measurements: &[Measurement]) -> String {
    let items: Vec<String> = measurements.iter().map(Measurement::to_json).collect();
    lazydram_common::json::array(&items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_and_mean() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 1.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        let _ = geomean(&[1.0, 0.0]);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.443), "44.3%");
    }

    #[test]
    fn parse_scale_accepts_positive_numbers() {
        assert_eq!(parse_scale("0.5"), Ok(0.5));
        assert_eq!(parse_scale(" 2 "), Ok(2.0));
    }

    #[test]
    fn parse_scale_rejects_garbage_zero_and_negative() {
        assert!(parse_scale("O.5").unwrap_err().contains("not a number"));
        assert!(parse_scale("0").unwrap_err().contains("positive"));
        assert!(parse_scale("-1").unwrap_err().contains("positive"));
        assert!(parse_scale("inf").unwrap_err().contains("finite"));
        assert!(parse_scale("nan").unwrap_err().contains("finite"));
    }

    #[test]
    fn parse_apps_lists_valid_names_on_error() {
        let apps = parse_apps("GEMM, scp").unwrap();
        assert_eq!(apps.len(), 2);
        assert_eq!(apps[0].name, "GEMM");
        assert_eq!(apps[1].name, "SCP");
        let err = parse_apps("GEMM,telepathy").unwrap_err();
        assert!(err.contains("telepathy"), "{err}");
        assert!(err.contains("GEMM") && err.contains("laplacian"), "{err}");
    }

    #[test]
    fn backend_env_helpers_expand_presets() {
        // Not touching the process env (tests run in parallel): exercise the
        // parse + expand path the env helpers are built from.
        let cfg = parse_backend("ddr4").unwrap().gpu_config();
        assert_eq!(cfg.backend, lazydram_common::BackendKind::Ddr4);
        assert!(parse_backend("gddr6").is_err());
    }

    #[test]
    fn measurement_json_is_schema_stable() {
        let m = Measurement {
            app: "GEMM".into(),
            scheme: "baseline".into(),
            stats: SimStats::new(),
            ipc: 1.25,
            activations: 42,
            avg_rbl: 3.5,
            coverage: 0.0,
            app_error: 0.0,
            row_energy_pj: 1e6,
            truncated: false,
            replayed: false,
            cached: false,
        };
        let j = m.to_json();
        assert!(!j.contains("cached"), "cache provenance must not leak into JSONL: {j}");
        for key in [
            "\"record\":\"measurement\"",
            "\"app\":\"GEMM\"",
            "\"scheme\":\"baseline\"",
            "\"ipc\":1.25",
            "\"activations\":42",
            "\"replayed\":false",
            "\"stats\":{",
            "\"dram\":{",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        assert_eq!(to_json(&[m.clone(), m]).matches("\"record\"").count(), 2);
    }
}
