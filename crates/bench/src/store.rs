//! Content-addressed simulation result store (DESIGN.md §13).
//!
//! The paper's evaluation is a dense grid of `(app, scheme, config)` cells,
//! and whole rows of that grid are shared: every figure normalizes against
//! the same execution-driven baselines, and `run_benches.sh` re-simulates
//! them for each of the 19 harnesses. This module turns each finished cell
//! into a durable, content-addressed on-disk entry so any later sweep —
//! same harness, a different figure, or a different process — serves it in
//! one file read instead of minutes of simulation.
//!
//! * **Key** — [`Store::cell_key`] folds the [`SimBuilder::cell_digest`]
//!   (app × scheme label × scale bits × machine config × policy × limits)
//!   with the requested *fidelity* ([`Fidelity::Execute`] vs
//!   [`Fidelity::Replay`] — a trace-replayed measurement zeroes `ipc` and
//!   `app_error`, so the two must never alias), the
//!   [`lazydram_common::SEMANTICS_VERSION`] (bumped by any
//!   behavior-changing PR, invalidating every stale entry at once), and the
//!   [`STORE_VERSION`] wire-format version.
//! * **Value** — the cell's exact [`Measurement`] bytes in a versioned
//!   `snap` frame with a trailing integrity digest. A served hit is
//!   byte-identical to re-running the simulation: stdout tables and
//!   `LAZYDRAM_RESULTS` JSONL do not change (the in-memory
//!   [`Measurement::cached`] provenance flag is deliberately excluded from
//!   the JSON schema).
//! * **Atomic multi-process publish** — entries are written to a unique
//!   temporary name and `rename`d into place, so the same cache directory is
//!   safely shared by concurrent runner threads *and* separate racing
//!   processes with **no locks**: both racers compute identical bytes
//!   (simulations are deterministic), both renames land a complete entry,
//!   and readers never observe a torn file. Anything short of a fully valid
//!   entry — truncated, bit-flipped, foreign snap/store version, stale
//!   semantics, key/identity mismatch — is **rejected and re-simulated,
//!   never trusted** (see [`EntryError`]).
//! * **Hot tier** — an in-memory `Arc` map serves intra-process repeats
//!   (the same cell submitted twice in one sweep) without touching disk;
//!   it subsumes the measurement half of the PR 1 baseline cache.
//! * **Accounting** — hit/miss/publish/reject/byte counters
//!   ([`Store::stats`], [`CacheStats`]) feed the end-of-sweep summary line
//!   and the `lazydram cache stats` subcommand.
//! * **Garbage collection** — [`Store::gc`] evicts least-recently-used
//!   entries (by access time, which [`Store::lookup`] refreshes on every
//!   hit so LRU works even on `relatime`/`noatime` mounts) until the store
//!   fits a byte budget.
//!
//! The profiler attribution (`SimStats::prof`) is wall-clock and therefore
//! not part of the stored bytes — a cache hit reports an empty profile,
//! exactly as `SimStats` equality and the checkpoint subsystem already
//! treat it.

use crate::Measurement;
use lazydram_common::snap::{digest, fold, Loader, Saver};
use lazydram_common::{SimStats, SEMANTICS_VERSION};
use lazydram_workloads::CacheMode;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Wire-format version of a store entry. Bump on any layout change; readers
/// reject entries from a different version (and `auto` mode re-simulates and
/// overwrites them). v2: the embedded `SimStats` frame gained the
/// `compute_cycles_skipped` counter (PR 9 skip-accounting split). v3: cell
/// keys started covering the memory-backend kind (PR 10 backend matrix) —
/// the layout is unchanged, but v2 entries predate backend-keyed configs,
/// so they are retired wholesale rather than trusted to collide correctly.
pub const STORE_VERSION: u16 = 3;

/// Filename extension of a store entry.
pub const ENTRY_EXT: &str = "meas";

/// How the measurement a cell asks for is produced — execution-driven, or
/// open-loop trace replay (which zeroes `ipc`/`app_error`). Folded into the
/// cache key so a replay-capable sweep and an execution-driven sweep sharing
/// one cache directory never serve each other's (different) bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Full execution-driven simulation.
    Execute,
    /// The sweep is allowed to replay this cell from a captured trace
    /// (`LAZYDRAM_TRACE_DIR` with mode `auto` or `replay`).
    Replay,
}

/// Why a store entry was rejected (and the cell re-simulated).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntryError {
    /// The file could not be read.
    Io(String),
    /// The file is too short to carry the trailing integrity digest.
    TooShort,
    /// The trailing digest does not match the content — torn copy or
    /// bit rot.
    Corrupt,
    /// The snap stream is malformed (truncated frame, bad tag, foreign snap
    /// version, …).
    Snap(String),
    /// The entry was written against a different store wire format.
    StoreVersion(u16),
    /// The entry was published under a different simulation-semantics
    /// version — its results may no longer be what the simulator computes.
    StaleSemantics(u64),
    /// The embedded cell key does not match the requested one (hash-renamed
    /// file or key collision; never trusted).
    KeyMismatch(u64),
    /// The embedded app/scheme identity does not match the requesting cell.
    Identity(String),
}

impl std::fmt::Display for EntryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EntryError::Io(e) => write!(f, "unreadable entry: {e}"),
            EntryError::TooShort => f.write_str("entry too short for integrity digest"),
            EntryError::Corrupt => f.write_str("integrity digest mismatch (torn or corrupt entry)"),
            EntryError::Snap(e) => write!(f, "malformed entry: {e}"),
            EntryError::StoreVersion(v) => {
                write!(f, "entry store version {v} != supported {STORE_VERSION}")
            }
            EntryError::StaleSemantics(v) => write!(
                f,
                "entry semantics version {v} != current {SEMANTICS_VERSION} (stale entry)"
            ),
            EntryError::KeyMismatch(k) => write!(f, "entry key {k:#018x} does not match request"),
            EntryError::Identity(s) => write!(f, "entry identity mismatch: {s}"),
        }
    }
}

impl std::error::Error for EntryError {}

/// Counter snapshot of one [`Store`]'s activity (monotonic since creation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from an on-disk entry.
    pub disk_hits: u64,
    /// Lookups served from the in-memory hot tier.
    pub hot_hits: u64,
    /// Lookups that found no usable entry.
    pub misses: u64,
    /// Entries published (including `refresh` overwrites).
    pub published: u64,
    /// On-disk entries rejected as torn/corrupt/stale/foreign.
    pub rejected: u64,
    /// Bytes read from served disk entries.
    pub bytes_read: u64,
    /// Bytes written by published entries.
    pub bytes_written: u64,
}

impl CacheStats {
    /// Total lookups served from either tier.
    pub fn hits(&self) -> u64 {
        self.disk_hits + self.hot_hits
    }
}

#[derive(Default)]
struct Counters {
    disk_hits: AtomicU64,
    hot_hits: AtomicU64,
    misses: AtomicU64,
    published: AtomicU64,
    rejected: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

/// One entry as seen by `ls`/`gc`/`stats`: location, size, recency, and the
/// embedded identity when the entry decodes cleanly.
#[derive(Debug, Clone)]
pub struct EntryInfo {
    /// Absolute path of the entry file.
    pub path: PathBuf,
    /// File size in bytes.
    pub bytes: u64,
    /// Best-effort last-use time (access time, falling back to mtime).
    pub used: Option<std::time::SystemTime>,
    /// Decoded `(app, scheme)` identity, or the rejection reason.
    pub identity: Result<(String, String), EntryError>,
}

/// The content-addressed on-disk result store. See the [module docs](self).
pub struct Store {
    dir: PathBuf,
    mode: CacheMode,
    hot: Mutex<HashMap<u64, Arc<Measurement>>>,
    counters: Counters,
    tmp_seq: AtomicU64,
}

impl Store {
    /// Opens (creating on demand) a store over `dir` in the given mode.
    ///
    /// # Errors
    ///
    /// Returns an error when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>, mode: CacheMode) -> Result<Self, String> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create LAZYDRAM_CACHE_DIR {}: {e}", dir.display()))?;
        Ok(Self {
            dir,
            mode,
            hot: Mutex::new(HashMap::new()),
            counters: Counters::default(),
            tmp_seq: AtomicU64::new(0),
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The lookup/publish mode.
    pub fn mode(&self) -> CacheMode {
        self.mode
    }

    /// A counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            disk_hits: self.counters.disk_hits.load(Ordering::Relaxed),
            hot_hits: self.counters.hot_hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            published: self.counters.published.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
            bytes_read: self.counters.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.counters.bytes_written.load(Ordering::Relaxed),
        }
    }

    /// The full cache key of one cell: the builder's content digest folded
    /// with the fidelity discriminator, the simulation-semantics version,
    /// and the store wire-format version.
    pub fn cell_key(cell_digest: u64, fidelity: Fidelity) -> u64 {
        let f = match fidelity {
            Fidelity::Execute => 0u64,
            Fidelity::Replay => 1u64,
        };
        fold(fold(fold(cell_digest, f), SEMANTICS_VERSION), u64::from(STORE_VERSION))
    }

    /// The entry file for a key (human-greppable app/scheme prefix, content
    /// address suffix).
    pub fn entry_path(&self, key: u64, app: &str, scheme: &str) -> PathBuf {
        let clean: String = format!("{app}-{scheme}")
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '.' { c } else { '_' })
            .collect();
        self.dir.join(format!("{clean}-{key:016x}.{ENTRY_EXT}"))
    }

    /// Looks `key` up in the hot tier, then on disk. A disk hit is verified
    /// end to end (integrity digest, versions, key, identity) before being
    /// served — and its access time refreshed for LRU gc — while any defect
    /// rejects the entry (counted, never trusted). Returns the measurement
    /// with [`Measurement::cached`] set.
    pub fn lookup(&self, key: u64, app: &str, scheme: &str) -> Option<Measurement> {
        if let Some(m) = self.hot.lock().expect("hot tier lock").get(&key) {
            self.counters.hot_hits.fetch_add(1, Ordering::Relaxed);
            let mut m = (**m).clone();
            m.cached = true;
            return Some(m);
        }
        let path = self.entry_path(key, app, scheme);
        match load_entry(&path, Some((key, app, scheme))) {
            Ok(m) => {
                self.counters.disk_hits.fetch_add(1, Ordering::Relaxed);
                self.counters
                    .bytes_read
                    .fetch_add(std::fs::metadata(&path).map_or(0, |md| md.len()), Ordering::Relaxed);
                touch(&path);
                self.hot
                    .lock()
                    .expect("hot tier lock")
                    .insert(key, Arc::new(m.clone()));
                let mut m = m;
                m.cached = true;
                Some(m)
            }
            Err(EntryError::Io(_)) => {
                // Missing entry: the ordinary miss.
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Err(_) => {
                self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Publishes a finished measurement under `key`: serialized to a unique
    /// temporary file, then atomically renamed into place (the lock-free
    /// multi-process convergence point — racing publishers of the same cell
    /// write identical bytes, and the last complete rename wins).
    ///
    /// # Errors
    ///
    /// Returns the IO error message; callers treat it as a warning (the
    /// simulation already succeeded — only its caching is lost).
    pub fn publish(&self, key: u64, m: &Measurement) -> Result<(), String> {
        let bytes = encode_entry(key, m);
        let path = self.entry_path(key, &m.app, &m.scheme);
        let tmp = self.dir.join(format!(
            ".{:016x}.{}.{}.tmp",
            key,
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, &bytes)
            .and_then(|()| std::fs::rename(&tmp, &path))
            .map_err(|e| {
                let _ = std::fs::remove_file(&tmp);
                format!("cannot publish cache entry {}: {e}", path.display())
            })?;
        self.counters.published.fetch_add(1, Ordering::Relaxed);
        self.counters.bytes_written.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        let mut clean = m.clone();
        clean.cached = false;
        self.hot.lock().expect("hot tier lock").insert(key, Arc::new(clean));
        Ok(())
    }

    /// Every `.meas` entry in the store directory, decoded best-effort.
    ///
    /// # Errors
    ///
    /// Returns an error when the directory cannot be listed.
    pub fn entries(&self) -> Result<Vec<EntryInfo>, String> {
        let mut out = Vec::new();
        let rd = std::fs::read_dir(&self.dir)
            .map_err(|e| format!("cannot list cache dir {}: {e}", self.dir.display()))?;
        for ent in rd {
            let ent = ent.map_err(|e| format!("cannot list cache dir: {e}"))?;
            let path = ent.path();
            if path.extension().and_then(|e| e.to_str()) != Some(ENTRY_EXT) {
                continue;
            }
            let md = ent.metadata().map_err(|e| format!("cannot stat {}: {e}", path.display()))?;
            let used = md.accessed().or_else(|_| md.modified()).ok();
            let identity = load_entry(&path, None).map(|m| (m.app, m.scheme));
            out.push(EntryInfo { path, bytes: md.len(), used, identity });
        }
        out.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(out)
    }

    /// Deletes least-recently-used entries until the store's total size fits
    /// `max_bytes`. Invalid (corrupt/stale/foreign) entries are evicted
    /// first regardless of recency — they can never be served. Returns the
    /// evicted entries.
    ///
    /// # Errors
    ///
    /// Returns an error when the directory cannot be listed or a victim
    /// cannot be removed.
    pub fn gc(&self, max_bytes: u64) -> Result<Vec<EntryInfo>, String> {
        let mut entries = self.entries()?;
        let mut total: u64 = entries.iter().map(|e| e.bytes).sum();
        // Victim order: invalid first, then oldest access time.
        entries.sort_by_key(|e| (e.identity.is_ok(), e.used));
        let mut evicted = Vec::new();
        for e in entries {
            if total <= max_bytes && e.identity.is_ok() {
                continue;
            }
            std::fs::remove_file(&e.path)
                .map_err(|err| format!("cannot remove {}: {err}", e.path.display()))?;
            total -= e.bytes;
            evicted.push(e);
        }
        Ok(evicted)
    }

    /// Removes every entry (and stray publish temporaries). Returns the
    /// number of files removed.
    ///
    /// # Errors
    ///
    /// Returns an error when the directory cannot be listed or a file cannot
    /// be removed.
    pub fn clear(&self) -> Result<usize, String> {
        let mut n = 0;
        let rd = std::fs::read_dir(&self.dir)
            .map_err(|e| format!("cannot list cache dir {}: {e}", self.dir.display()))?;
        for ent in rd {
            let ent = ent.map_err(|e| format!("cannot list cache dir: {e}"))?;
            let path = ent.path();
            let name = ent.file_name();
            let name = name.to_string_lossy();
            if name.ends_with(&format!(".{ENTRY_EXT}")) || name.ends_with(".tmp") {
                std::fs::remove_file(&path)
                    .map_err(|e| format!("cannot remove {}: {e}", path.display()))?;
                n += 1;
            }
        }
        self.hot.lock().expect("hot tier lock").clear();
        Ok(n)
    }
}

/// Refreshes an entry's access time so LRU gc sees the hit even on
/// `relatime`/`noatime` mounts. Best-effort: failures are ignored (an LRU
/// hint, not a correctness input).
fn touch(path: &Path) {
    if let Ok(f) = std::fs::File::options().write(true).open(path) {
        let now = std::time::SystemTime::now();
        let _ = f.set_times(std::fs::FileTimes::new().set_accessed(now).set_modified(now));
    }
}

/// Serializes one entry: snap header, a `cell` frame carrying the store
/// version, semantics version, key and the `meas` measurement frame, then a
/// trailing integrity digest over everything before it.
pub fn encode_entry(key: u64, m: &Measurement) -> Vec<u8> {
    let mut s = Saver::new();
    s.header();
    s.frame("cell", 0, |s| {
        s.u16("store_version", STORE_VERSION);
        s.u64("semantics", SEMANTICS_VERSION);
        s.u64("key", key);
        s.frame("meas", 0, |s| save_measurement(s, m));
    });
    let mut bytes = s.finish();
    let d = digest(&bytes);
    bytes.extend_from_slice(&d.to_le_bytes());
    bytes
}

/// Decodes one entry file, verifying — in order — the trailing integrity
/// digest, the snap header, the store and semantics versions, and (when
/// `expect` is given) the cell key and app/scheme identity. Every defect is
/// a typed [`EntryError`]; the caller re-simulates instead of trusting the
/// entry. The returned measurement has [`Measurement::cached`] **unset**
/// (provenance is the caller's call).
pub fn load_entry(
    path: &Path,
    expect: Option<(u64, &str, &str)>,
) -> Result<Measurement, EntryError> {
    let bytes = std::fs::read(path).map_err(|e| EntryError::Io(e.to_string()))?;
    decode_entry(&bytes, expect)
}

/// [`load_entry`] over in-memory bytes (unit-test seam).
pub fn decode_entry(
    bytes: &[u8],
    expect: Option<(u64, &str, &str)>,
) -> Result<Measurement, EntryError> {
    if bytes.len() < 8 {
        return Err(EntryError::TooShort);
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let declared = u64::from_le_bytes(tail.try_into().expect("8 tail bytes"));
    if digest(body) != declared {
        return Err(EntryError::Corrupt);
    }
    let mut l = Loader::new(body);
    l.expect_header().map_err(|e| EntryError::Snap(e.to_string()))?;
    let m = l
        .frame("cell", 0, |l| {
            let store_version = l.u16("store_version")?;
            let semantics = l.u64("semantics")?;
            let key = l.u64("key")?;
            let m = l.frame("meas", 0, load_measurement)?;
            Ok((store_version, semantics, key, m))
        })
        .map_err(|e| EntryError::Snap(e.to_string()))
        .and_then(|(store_version, semantics, key, m)| {
            if store_version != STORE_VERSION {
                return Err(EntryError::StoreVersion(store_version));
            }
            if semantics != SEMANTICS_VERSION {
                return Err(EntryError::StaleSemantics(semantics));
            }
            if let Some((want_key, app, scheme)) = expect {
                if key != want_key {
                    return Err(EntryError::KeyMismatch(key));
                }
                if m.app != app || m.scheme != scheme {
                    return Err(EntryError::Identity(format!(
                        "entry is {}/{}, request is {app}/{scheme}",
                        m.app, m.scheme
                    )));
                }
            }
            Ok(m)
        })?;
    if !l.is_done() {
        return Err(EntryError::Snap("trailing bytes after cell frame".into()));
    }
    Ok(m)
}

fn save_measurement(s: &mut Saver, m: &Measurement) {
    // Exhaustive destructure: adding a Measurement field without deciding
    // whether the store carries it fails to compile. `cached` is in-process
    // provenance, never serialized; `stats.prof` is wall-clock and excluded
    // by SimStats::save_state.
    let Measurement {
        app,
        scheme,
        stats,
        ipc,
        activations,
        avg_rbl,
        coverage,
        app_error,
        row_energy_pj,
        truncated,
        replayed,
        cached: _,
    } = m;
    s.str("app", app);
    s.str("scheme", scheme);
    s.f64("ipc", *ipc);
    s.u64("activations", *activations);
    s.f64("avg_rbl", *avg_rbl);
    s.f64("coverage", *coverage);
    s.f64("app_error", *app_error);
    s.f64("row_energy_pj", *row_energy_pj);
    s.bool("truncated", *truncated);
    s.bool("replayed", *replayed);
    stats.save_state(s);
}

fn load_measurement(l: &mut Loader<'_>) -> lazydram_common::SnapResult<Measurement> {
    let app = l.str("app")?;
    let scheme = l.str("scheme")?;
    let ipc = l.f64("ipc")?;
    let activations = l.u64("activations")?;
    let avg_rbl = l.f64("avg_rbl")?;
    let coverage = l.f64("coverage")?;
    let app_error = l.f64("app_error")?;
    let row_energy_pj = l.f64("row_energy_pj")?;
    let truncated = l.bool("truncated")?;
    let replayed = l.bool("replayed")?;
    let mut stats = SimStats::new();
    stats.load_state(l)?;
    Ok(Measurement {
        app,
        scheme,
        stats,
        ipc,
        activations,
        avg_rbl,
        coverage,
        app_error,
        row_energy_pj,
        truncated,
        replayed,
        cached: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(app: &str, scheme: &str) -> Measurement {
        let mut stats = SimStats::new();
        stats.core_cycles = 1234;
        stats.instructions = 5678;
        stats.dram.activations = 42;
        stats.dram.reads = 99;
        Measurement {
            app: app.into(),
            scheme: scheme.into(),
            stats,
            ipc: 4.6,
            activations: 42,
            avg_rbl: 2.5,
            coverage: 0.25,
            app_error: 0.01,
            row_energy_pj: 1.5e6,
            truncated: false,
            replayed: false,
            cached: false,
        }
    }

    #[test]
    fn entry_round_trips_exactly() {
        let m = sample("SCP", "DMS(128)");
        let key = Store::cell_key(0xDEAD_BEEF, Fidelity::Execute);
        let bytes = encode_entry(key, &m);
        let back = decode_entry(&bytes, Some((key, "SCP", "DMS(128)"))).unwrap();
        assert_eq!(back.app, m.app);
        assert_eq!(back.scheme, m.scheme);
        assert_eq!(back.stats, m.stats);
        assert_eq!(back.ipc.to_bits(), m.ipc.to_bits());
        assert_eq!(back.row_energy_pj.to_bits(), m.row_energy_pj.to_bits());
        assert!(!back.cached);
        // The JSONL record — the byte-identity surface — is unchanged.
        assert_eq!(back.to_json(), m.to_json());
    }

    #[test]
    fn fidelity_and_semantics_split_the_key_space() {
        let d = 0x1234_5678_9ABC_DEF0u64;
        assert_ne!(
            Store::cell_key(d, Fidelity::Execute),
            Store::cell_key(d, Fidelity::Replay)
        );
        assert_ne!(Store::cell_key(d, Fidelity::Execute), d);
    }

    #[test]
    fn truncated_and_corrupt_entries_rejected() {
        let m = sample("SCP", "baseline");
        let key = Store::cell_key(1, Fidelity::Execute);
        let bytes = encode_entry(key, &m);
        // Too short for even the digest tail.
        assert_eq!(decode_entry(&bytes[..4], None), Err(EntryError::TooShort));
        // Truncation anywhere invalidates the trailing digest.
        for cut in [bytes.len() - 1, bytes.len() / 2, 9] {
            assert_eq!(
                decode_entry(&bytes[..cut], None),
                Err(EntryError::Corrupt),
                "cut at {cut}"
            );
        }
        // A single flipped bit anywhere is caught.
        for at in [6, bytes.len() / 3, bytes.len() - 9] {
            let mut bad = bytes.clone();
            bad[at] ^= 0x40;
            assert_eq!(decode_entry(&bad, None), Err(EntryError::Corrupt), "flip at {at}");
        }
    }

    #[test]
    fn stale_semantics_and_foreign_versions_rejected() {
        let m = sample("SCP", "baseline");
        let key = Store::cell_key(1, Fidelity::Execute);

        // Hand-build an entry claiming a different semantics version (a
        // stale store left over from before a behavior-changing PR).
        let forge = |semantics: u64, store_version: u16| {
            let mut s = Saver::new();
            s.header();
            s.frame("cell", 0, |s| {
                s.u16("store_version", store_version);
                s.u64("semantics", semantics);
                s.u64("key", key);
                s.frame("meas", 0, |s| save_measurement(s, &m));
            });
            let mut bytes = s.finish();
            let d = digest(&bytes);
            bytes.extend_from_slice(&d.to_le_bytes());
            bytes
        };
        assert_eq!(
            decode_entry(&forge(SEMANTICS_VERSION + 1, STORE_VERSION), None),
            Err(EntryError::StaleSemantics(SEMANTICS_VERSION + 1))
        );
        assert_eq!(
            decode_entry(&forge(SEMANTICS_VERSION, STORE_VERSION + 1), None),
            Err(EntryError::StoreVersion(STORE_VERSION + 1))
        );
        // Valid content under the wrong key or identity is never served.
        let good = forge(SEMANTICS_VERSION, STORE_VERSION);
        assert_eq!(
            decode_entry(&good, Some((key ^ 1, "SCP", "baseline"))),
            Err(EntryError::KeyMismatch(key))
        );
        assert!(matches!(
            decode_entry(&good, Some((key, "GEMM", "baseline"))),
            Err(EntryError::Identity(_))
        ));
    }
}
