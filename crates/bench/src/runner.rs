//! Parallel sweep runner with panic isolation.
//!
//! The full reproduction sweep runs hundreds of independent, deterministic
//! `(app × scheme)` simulations. This module fans them across a
//! [`std::thread::scope`] worker pool:
//!
//! * **Worker count** comes from `LAZYDRAM_JOBS` (default:
//!   [`std::thread::available_parallelism`]). `LAZYDRAM_JOBS=1` reproduces
//!   the sequential run bit for bit. This knob **multiplies** with the
//!   intra-run `LAZYDRAM_CORES` (each job's simulator runs its phased tick
//!   that wide — see `crates/gpu/src/pool.rs`); [`SweepRunner::from_env`]
//!   warns when `jobs × cores` oversubscribes the machine. For sweeps,
//!   keep `LAZYDRAM_CORES=1` — job-level parallelism already saturates the
//!   CPUs; `LAZYDRAM_CORES` earns its keep on *single* long runs.
//! * **Determinism** — results are collected in submission order, so harness
//!   output is byte-identical regardless of worker count or completion
//!   order.
//! * **Panic isolation** — each job runs under
//!   [`std::panic::catch_unwind`]; one panicking simulation becomes a
//!   [`JobFailure`] (rendered by harnesses as a `FAIL` row) instead of
//!   killing the whole sweep.
//! * **Baseline sharing** — `(app, config, scale)` baseline measurements and
//!   exact functional outputs are computed once in a concurrent cache and
//!   shared across schemes, instead of once per figure as the sequential
//!   harnesses used to do.
//! * **Observability** — per-job wall-clock timing and `[k/n]` progress
//!   lines on stderr, plus an optional JSONL results file
//!   (`LAZYDRAM_RESULTS=path`) with one schema-stable [`Measurement`]
//!   record per line for downstream plotting. Timing never enters the JSONL
//!   records, so result files from parallel and sequential runs are
//!   byte-identical.
//! * **Crash recovery** — with `LAZYDRAM_CHECKPOINT_DIR` set (interval via
//!   `LAZYDRAM_CHECKPOINT_EVERY`, default
//!   [`lazydram_workloads::DEFAULT_CHECKPOINT_EVERY`] cycles), every job
//!   periodically parks a serialized checkpoint; re-running a killed sweep
//!   resumes each job from its last parked checkpoint instead of cycle 0,
//!   and the bit-identical restore guarantee keeps the results (and the
//!   JSONL file) byte-identical to an uninterrupted sweep. Checkpoint-IO
//!   failures surface as [`JobFailure`] records, not panics.
//! * **Trace fast path** — with `LAZYDRAM_TRACE_DIR` set (behavior via
//!   `LAZYDRAM_TRACE_MODE`: `auto` (default), `capture`, or `replay`), each
//!   `(app, machine geometry, scale)` baseline run records the coalesced
//!   request stream at the NoC→MC boundary and parks it in the trace store;
//!   sweep cells then replay that stream through MC + DRAM only
//!   ([`crate::try_measure_replay`]), turning scheduler-side sweeps
//!   (fig02/fig04/fig11/fig13) into capture-once-replay-many. Replayed
//!   records carry `replayed: true` in the JSONL and report `ipc`/
//!   `app_error` as 0 (open-loop replay has no core side); a replay that
//!   cannot serve every recorded request is a [`JobFailure`], never a
//!   silently smaller result.
//! * **Result cache** — with `LAZYDRAM_CACHE_DIR` set (behavior via
//!   `LAZYDRAM_CACHE_MODE`: `auto` (default), `require`, `refresh`, `off`),
//!   every finished `(app × scheme × config)` cell is published to the
//!   content-addressed [`Store`](crate::store) and later sweeps — any
//!   harness, any process — serve it from disk instead of re-simulating.
//!   Cache hits are byte-identical to execution (the
//!   [`Measurement::cached`] provenance flag never enters stdout or the
//!   JSONL), flagged `[cache hit]` on the progress line, and tallied in the
//!   end-of-sweep summary. `require` turns a miss into a [`JobFailure`]
//!   with a remediation hint; `refresh` re-simulates and overwrites. See
//!   [`crate::store`] for the key structure and the lock-free multi-process
//!   publish protocol.
//! * **End-of-sweep summary** — dropping the runner prints one stderr line
//!   (jobs run, failures, elapsed wall clock, cache counters), suppressed
//!   under `LAZYDRAM_QUIET` or when no jobs ran.

use crate::store::{Fidelity, Store};
use crate::{try_measure, try_measure_replay, try_measure_traced, Measurement};
use lazydram_common::json::JsonObject;
use lazydram_common::{GpuConfig, Scheme};
use lazydram_gpu::Trace;
use lazydram_workloads::{exact_output, AppSpec, CacheMode, CachePolicy, CheckpointPolicy,
                         SimBuilder, TraceMode, TracePolicy};
use std::collections::HashMap;
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Report for one job that panicked instead of producing a value.
#[derive(Debug, Clone)]
pub struct JobFailure {
    /// The job's display label.
    pub label: String,
    /// The panic payload, stringified.
    pub message: String,
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} panicked: {}", self.label, self.message)
    }
}

/// Outcome of one isolated job.
pub type JobResult<T> = Result<T, JobFailure>;

type BoxedWork<'a, T> = Box<dyn FnOnce() -> T + Send + 'a>;
type NoteFn<'a, T> = Box<dyn Fn(&T) -> String + Send + 'a>;
/// A claimable job slot: the work closure plus its optional note formatter,
/// taken exactly once by whichever worker claims the index.
type JobSlot<'a, T> = Mutex<Option<(BoxedWork<'a, T>, Option<NoteFn<'a, T>>)>>;

/// One unit of work for [`SweepRunner::run`]: a label plus a closure.
pub struct Job<'a, T> {
    label: String,
    work: BoxedWork<'a, T>,
    note: Option<NoteFn<'a, T>>,
}

impl<'a, T> Job<'a, T> {
    /// Wraps a closure with a display label.
    pub fn new(label: impl Into<String>, work: impl FnOnce() -> T + Send + 'a) -> Self {
        Self { label: label.into(), work: Box::new(work), note: None }
    }

    /// Adds an annotation rendered on the job's stderr progress line after a
    /// successful run (e.g. the fraction of cycles fast-forwarded).
    pub fn with_note(mut self, note: impl Fn(&T) -> String + Send + 'a) -> Self {
        self.note = Some(Box::new(note));
        self
    }
}

/// A cached `(app, config, scale)` baseline: the measurement under
/// [`SchedConfig::baseline`] plus the exact functional output shared by
/// every scheme of that app.
#[derive(Debug)]
pub struct Baseline {
    /// Baseline measurement (scheme label `"baseline"`).
    pub measurement: Measurement,
    /// Exact functional output (application-error reference).
    pub exact: Arc<Vec<f32>>,
}

/// Everything needed to run one `(app, scheme)` measurement job: the fully
/// configured [`SimBuilder`] plus the app's shared exact output.
#[derive(Clone)]
pub struct MeasureSpec {
    /// The configured simulation (app, scheme, machine, scale, …).
    pub builder: SimBuilder,
    /// Exact output shared across the app's schemes.
    pub exact: Arc<Vec<f32>>,
}

impl MeasureSpec {
    /// Pairs a configured builder with its app's exact reference output.
    pub fn new(builder: SimBuilder, exact: Arc<Vec<f32>>) -> Self {
        Self { builder, exact }
    }
}

type BaselineKey = (String, u64, String);
type TraceCell = Arc<OnceLock<Result<Arc<Trace>, String>>>;

/// Parallel sweep runner. See the [module docs](self) for the full design.
pub struct SweepRunner {
    workers: usize,
    quiet: bool,
    results: Option<Mutex<std::io::BufWriter<std::fs::File>>>,
    checkpoints: Option<CheckpointPolicy>,
    traces: Option<TracePolicy>,
    cache: Option<Store>,
    baselines: Mutex<HashMap<BaselineKey, Arc<OnceLock<Arc<Baseline>>>>>,
    trace_cache: Mutex<HashMap<PathBuf, TraceCell>>,
    jobs_run: AtomicU64,
    jobs_failed: AtomicU64,
    started: Instant,
}

/// Parses a `LAZYDRAM_JOBS` value: a positive worker count.
pub fn parse_jobs(s: &str) -> Result<usize, String> {
    match s.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!(
            "LAZYDRAM_JOBS={s:?} is not a positive worker count; expected e.g. 1, 4 or 8"
        )),
    }
}

impl SweepRunner {
    /// Builds a runner from the environment: worker count from
    /// `LAZYDRAM_JOBS` (default: available parallelism), JSONL results path
    /// from `LAZYDRAM_RESULTS` (default: none), crash-recovery
    /// checkpointing from `LAZYDRAM_CHECKPOINT_DIR` /
    /// `LAZYDRAM_CHECKPOINT_EVERY` (default: off).
    ///
    /// # Panics
    ///
    /// Panics on a malformed `LAZYDRAM_JOBS`, an unwritable
    /// `LAZYDRAM_RESULTS` path, or malformed checkpoint/trace variables.
    pub fn from_env() -> Self {
        let workers = match std::env::var("LAZYDRAM_JOBS") {
            Ok(s) => parse_jobs(&s).unwrap_or_else(|e| panic!("{e}")),
            Err(_) => std::thread::available_parallelism().map_or(1, |n| n.get()),
        };
        let runner = Self::with_workers(workers)
            .with_checkpoints(CheckpointPolicy::from_env_or_die())
            .with_traces(TracePolicy::from_env_or_die())
            .with_cache(CachePolicy::from_env_or_die());
        // The two parallelism knobs multiply: each of the LAZYDRAM_JOBS
        // sweep workers runs its own simulator, and each simulator spins up
        // LAZYDRAM_CORES-wide intra-run phases. jobs × cores beyond the
        // machine oversubscribes it and usually runs *slower* than leaving
        // LAZYDRAM_CORES=1 for sweeps (many independent sims already
        // saturate the CPUs). Warn rather than clamp — a deliberate
        // oversubscription for testing stays possible.
        let cores = lazydram_gpu::cores_from_env();
        let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
        if !runner.quiet && runner.workers * cores > cpus {
            eprintln!(
                "warning: LAZYDRAM_JOBS={jobs} × LAZYDRAM_CORES={cores} = {product} threads \
                 oversubscribes {cpus} CPU(s); prefer LAZYDRAM_CORES=1 for sweeps (jobs-level \
                 parallelism already saturates the machine) or lower LAZYDRAM_JOBS",
                jobs = runner.workers,
                product = runner.workers * cores,
            );
        }
        match std::env::var("LAZYDRAM_RESULTS") {
            Ok(path) if !path.trim().is_empty() => runner.with_results_file(&path),
            _ => runner,
        }
    }

    /// Builds a runner with an explicit worker count (≥ 1).
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            quiet: std::env::var("LAZYDRAM_QUIET").is_ok(),
            results: None,
            checkpoints: None,
            traces: None,
            cache: None,
            baselines: Mutex::new(HashMap::new()),
            trace_cache: Mutex::new(HashMap::new()),
            jobs_run: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// Attaches (or clears) the periodic checkpoint policy applied to every
    /// measurement job.
    pub fn with_checkpoints(mut self, policy: Option<CheckpointPolicy>) -> Self {
        self.checkpoints = policy;
        self
    }

    /// Attaches (or clears) the trace capture/replay policy: baselines
    /// capture the request stream into the policy's store, and sweep cells
    /// replay it through MC + DRAM only instead of re-running the GPU (see
    /// [`TraceMode`] for the capture/replay split).
    pub fn with_traces(mut self, policy: Option<TracePolicy>) -> Self {
        self.traces = policy;
        self
    }

    /// Attaches (or clears) the content-addressed result cache: sweep cells
    /// consult the [`Store`] before simulating and publish finished
    /// measurements into it. A policy in [`CacheMode::Off`] detaches the
    /// cache entirely.
    ///
    /// # Panics
    ///
    /// Panics when the store directory cannot be created.
    pub fn with_cache(mut self, policy: Option<CachePolicy>) -> Self {
        self.cache = match policy {
            Some(p) if p.mode != CacheMode::Off => {
                Some(Store::open(&p.dir, p.mode).unwrap_or_else(|e| panic!("{e}")))
            }
            _ => None,
        };
        self
    }

    /// The attached result store, when caching is enabled.
    pub fn cache(&self) -> Option<&Store> {
        self.cache.as_ref()
    }

    /// Enables the JSONL results file (truncates `path`).
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be created.
    pub fn with_results_file(mut self, path: &str) -> Self {
        let file = std::fs::File::create(path)
            .unwrap_or_else(|e| panic!("cannot create LAZYDRAM_RESULTS={path:?}: {e}"));
        self.results = Some(Mutex::new(std::io::BufWriter::new(file)));
        self
    }

    /// Suppresses the stderr progress lines (used by tests).
    pub fn quiet(mut self) -> Self {
        self.quiet = true;
        self
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `jobs` on the worker pool and returns their outcomes **in
    /// submission order**. A panicking job yields `Err(JobFailure)`; all
    /// other jobs are unaffected.
    pub fn run<T: Send>(&self, jobs: Vec<Job<'_, T>>) -> Vec<JobResult<T>> {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let mut labels = Vec::with_capacity(n);
        let mut slots: Vec<JobSlot<'_, T>> = Vec::with_capacity(n);
        for job in jobs {
            labels.push(job.label);
            slots.push(Mutex::new(Some((job.work, job.note))));
        }
        let results: Vec<Mutex<Option<JobResult<T>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let sweep_start = Instant::now();
        let workers = self.workers.min(n);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let (work, note) = slots[i]
                        .lock()
                        .expect("job slot lock")
                        .take()
                        .expect("job taken once");
                    let job_start = Instant::now();
                    let outcome = catch_unwind(AssertUnwindSafe(work));
                    let elapsed = job_start.elapsed();
                    let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                    self.jobs_run.fetch_add(1, Ordering::Relaxed);
                    let (res, status, annotation) = match outcome {
                        Ok(v) => {
                            let a = note.as_ref().map_or_else(String::new, |f| f(&v));
                            (Ok(v), "ok", a)
                        }
                        Err(payload) => {
                            self.jobs_failed.fetch_add(1, Ordering::Relaxed);
                            (
                                Err(JobFailure {
                                    label: labels[i].clone(),
                                    message: panic_message(payload.as_ref()),
                                }),
                                "FAILED",
                                String::new(),
                            )
                        }
                    };
                    if !self.quiet {
                        eprintln!(
                            "[{finished}/{n}] {label} {status} in {job:.1}s (elapsed {total:.1}s){annotation}",
                            label = labels[i],
                            job = elapsed.as_secs_f64(),
                            total = sweep_start.elapsed().as_secs_f64(),
                        );
                    }
                    *results[i].lock().expect("result slot lock") = Some(res);
                });
            }
        });
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result lock")
                    .expect("every job ran")
            })
            .collect()
    }

    /// Computes (or returns the cached) baseline for `(app, cfg, scale)`.
    ///
    /// Concurrent callers of the same key block until the single
    /// computation finishes; different keys compute in parallel.
    pub fn baseline(&self, app: &AppSpec, cfg: &GpuConfig, scale: f64) -> Arc<Baseline> {
        let key: BaselineKey = (app.name.to_string(), scale.to_bits(), format!("{cfg:?}"));
        let cell = self
            .baselines
            .lock()
            .expect("baseline cache lock")
            .entry(key)
            .or_insert_with(|| Arc::new(OnceLock::new()))
            .clone();
        cell.get_or_init(|| {
            let exact = Arc::new(exact_output(app, scale));
            // With a trace policy attached, the baseline run doubles as the
            // capture run: it records the request stream and parks it in
            // the trace store for the sweep cells to replay. The baseline
            // *measurement* stays execution-driven either way (it anchors
            // the IPC/error normalization, which replay cannot provide).
            let capture = self.traces.as_ref().is_some_and(|p| {
                p.mode != TraceMode::Replay && !p.path_for(app.name, cfg, scale).exists()
            });
            let builder = SimBuilder::new(app)
                .gpu(cfg.clone())
                .scheme(Scheme::Baseline)
                .scale(scale)
                .checkpoints(self.checkpoints.clone())
                .trace(capture);
            // A pending trace capture forces execution in auto mode — a
            // cache hit can serve the measurement but not park the trace
            // the sweep cells will want. `require` mode still looks up (it
            // promises a simulation-free sweep; replay cells then hit the
            // cache too, so the missing trace never matters).
            let skip_lookup = capture && self.cache.as_ref().is_some_and(|s| s.mode() != CacheMode::Require);
            if !skip_lookup {
                match self.cache_lookup(&builder, Fidelity::Execute) {
                    Ok(Some(measurement)) => return Arc::new(Baseline { measurement, exact }),
                    Ok(None) => {}
                    Err(e) => panic!("{e}"),
                }
            }
            let key = Store::cell_key(builder.cell_digest(), Fidelity::Execute);
            let run = builder.build();
            let (measurement, trace) =
                try_measure_traced(&run, &exact).unwrap_or_else(|e| panic!("{e}"));
            self.cache_publish(key, &measurement);
            if let (Some(policy), Some(trace)) = (&self.traces, trace) {
                let path = policy.path_for(app.name, cfg, scale);
                std::fs::create_dir_all(&policy.dir).unwrap_or_else(|e| {
                    panic!("cannot create LAZYDRAM_TRACE_DIR {}: {e}", policy.dir.display())
                });
                trace
                    .save_file(&path, cfg)
                    .unwrap_or_else(|e| panic!("cannot park captured trace: {e}"));
                // Seed the in-memory cache so replay jobs skip the decode.
                let cell = self.trace_cell(&path);
                let _ = cell.set(Ok(Arc::new(trace)));
            }
            Arc::new(Baseline { measurement, exact })
        })
        .clone()
    }

    fn trace_cell(&self, path: &Path) -> TraceCell {
        self.trace_cache
            .lock()
            .expect("trace cache lock")
            .entry(path.to_path_buf())
            .or_insert_with(|| Arc::new(OnceLock::new()))
            .clone()
    }

    /// Loads (and caches) a trace-store file; concurrent replay jobs of the
    /// same sweep share one decoded [`Trace`].
    fn load_trace(&self, path: &Path, cfg: &GpuConfig) -> Result<Arc<Trace>, String> {
        self.trace_cell(path)
            .get_or_init(|| Trace::load_file(path, cfg).map(Arc::new).map_err(|e| e.to_string()))
            .clone()
    }

    /// Computes all apps' baselines **in parallel** (through the cache) and
    /// records them in the JSONL results file. Returns one outcome per app,
    /// in order.
    pub fn baselines(
        &self,
        apps: &[AppSpec],
        cfg: &GpuConfig,
        scale: f64,
    ) -> Vec<JobResult<Arc<Baseline>>> {
        let jobs = apps
            .iter()
            .map(|app| {
                Job::new(format!("{}/baseline", app.name), move || {
                    self.baseline(app, cfg, scale)
                })
                .with_note(|b: &Arc<Baseline>| skip_note(&b.measurement))
            })
            .collect();
        let results = self.run(jobs);
        for res in &results {
            match res {
                Ok(b) => self.record_measurement(&b.measurement),
                Err(f) => self.record_failure(f),
            }
        }
        self.flush_results();
        results
    }

    /// Runs every measurement spec on the pool, records the outcomes in the
    /// JSONL results file (submission order, so files are byte-identical
    /// across worker counts), and returns the outcomes in submission order.
    /// With a checkpoint policy attached, each job runs crash-recoverably;
    /// a checkpoint-IO failure becomes that job's [`JobFailure`] record.
    pub fn measure_all(&self, specs: Vec<MeasureSpec>) -> Vec<JobResult<Measurement>> {
        let labels: Vec<String> = specs
            .iter()
            .map(|s| format!("{}/{}", s.builder.app().name, s.builder.scheme_label()))
            .collect();
        let jobs = specs
            .into_iter()
            .zip(&labels)
            .map(|(spec, label)| {
                // The runner's policy wins when set; otherwise whatever the
                // spec's builder already carries stays in effect.
                let builder = match &self.checkpoints {
                    Some(p) => spec.builder.checkpoints(Some(p.clone())),
                    None => spec.builder,
                };
                let exact = spec.exact;
                Job::new(label.clone(), move || self.measure_one(builder, &exact)).with_note(
                    |r: &Result<Measurement, String>| match r {
                        Ok(m) => skip_note(m),
                        Err(_) => String::new(),
                    },
                )
            })
            .collect();
        let results: Vec<JobResult<Measurement>> = self
            .run(jobs)
            .into_iter()
            .zip(labels)
            .map(|(res, label)| match res {
                Ok(Ok(m)) => Ok(m),
                Ok(Err(message)) => {
                    self.jobs_failed.fetch_add(1, Ordering::Relaxed);
                    Err(JobFailure { label, message })
                }
                Err(f) => Err(f),
            })
            .collect();
        for res in &results {
            match res {
                Ok(m) => self.record_measurement(m),
                Err(f) => self.record_failure(f),
            }
        }
        self.flush_results();
        results
    }

    /// One sweep cell: open-loop trace replay when the policy and store
    /// allow it, execution-driven otherwise — behind the result cache.
    ///
    /// The route (replay vs. execute) is resolved **before** the cache is
    /// consulted, for two reasons: the cache key's fidelity flavor must
    /// match the bytes the cell would actually produce (replay zeroes
    /// `ipc`/`app_error`), and a replay-mode cell whose trace is missing
    /// must fail identically whether or not some earlier sweep published an
    /// entry — warm and cold runs stay byte-identical.
    fn measure_one(&self, builder: SimBuilder, exact: &[f32]) -> Result<Measurement, String> {
        let mut replay_path = None;
        if let Some(policy) = &self.traces {
            if policy.mode != TraceMode::Capture {
                let path = policy.path_for(
                    builder.app().name,
                    builder.gpu_config(),
                    builder.work_scale(),
                );
                if path.exists() {
                    replay_path = Some(path);
                } else if policy.mode == TraceMode::Replay {
                    return Err(format!(
                        "no captured trace at {} (run the sweep once with \
                         LAZYDRAM_TRACE_MODE=auto or capture to record it)",
                        path.display()
                    ));
                }
                // Auto mode with no stored trace for this machine geometry
                // (e.g. an ablation config no baseline captured): fall back
                // to the execution-driven path.
            }
        }
        let fidelity = if replay_path.is_some() { Fidelity::Replay } else { Fidelity::Execute };
        if let Some(m) = self.cache_lookup(&builder, fidelity)? {
            return Ok(m);
        }
        let key = Store::cell_key(builder.cell_digest(), fidelity);
        let m = match replay_path {
            Some(path) => {
                let trace = self.load_trace(&path, builder.gpu_config())?;
                try_measure_replay(&builder.build(), &trace)?
            }
            None => try_measure(&builder.build(), exact)?,
        };
        self.cache_publish(key, &m);
        Ok(m)
    }

    /// Consults the result store for one configured cell. `Ok(Some)` is a
    /// hit (with [`Measurement::cached`] set); `Ok(None)` means simulate
    /// (store off, `refresh` mode, or a plain miss); `Err` is a `require`-
    /// mode miss with a remediation hint.
    fn cache_lookup(
        &self,
        builder: &SimBuilder,
        fidelity: Fidelity,
    ) -> Result<Option<Measurement>, String> {
        let Some(store) = &self.cache else { return Ok(None) };
        if store.mode() == CacheMode::Refresh {
            return Ok(None);
        }
        let key = Store::cell_key(builder.cell_digest(), fidelity);
        let app = builder.app().name;
        let scheme = builder.scheme_label();
        match store.lookup(key, app, scheme) {
            Some(m) => Ok(Some(m)),
            None if store.mode() == CacheMode::Require => Err(format!(
                "no cache entry for {app}/{scheme} (key {key:#018x}) in {} and \
                 LAZYDRAM_CACHE_MODE=require forbids simulating; populate the store by \
                 re-running with LAZYDRAM_CACHE_MODE=auto, or point LAZYDRAM_CACHE_DIR \
                 at a store that already holds this sweep",
                store.dir().display()
            )),
            None => Ok(None),
        }
    }

    /// Publishes a finished cell into the result store. Publish failures
    /// cost only future cache hits, never the sweep: they are reported as a
    /// stderr warning (unless quiet), not raised.
    fn cache_publish(&self, key: u64, m: &Measurement) {
        let Some(store) = &self.cache else { return };
        if let Err(e) = store.publish(key, m) {
            if !self.quiet {
                eprintln!("warning: {e}");
            }
        }
    }

    fn record_measurement(&self, m: &Measurement) {
        if let Some(out) = &self.results {
            let mut out = out.lock().expect("results lock");
            writeln!(out, "{}", m.to_json()).expect("write LAZYDRAM_RESULTS");
        }
    }

    fn record_failure(&self, f: &JobFailure) {
        if let Some(out) = &self.results {
            let mut o = JsonObject::new();
            o.str("record", "failure")
                .str("label", &f.label)
                .str("error", &f.message);
            let mut out = out.lock().expect("results lock");
            writeln!(out, "{}", o.finish()).expect("write LAZYDRAM_RESULTS");
        }
    }

    fn flush_results(&self) {
        if let Some(out) = &self.results {
            out.lock().expect("results lock").flush().expect("flush LAZYDRAM_RESULTS");
        }
    }
}

impl Drop for SweepRunner {
    /// Prints the end-of-sweep summary line: jobs run, failures, elapsed
    /// wall clock, and the cache counters. On stderr (like the progress
    /// lines, so stdout tables stay byte-identical); suppressed when quiet
    /// or when the runner never ran a job.
    fn drop(&mut self) {
        let jobs = self.jobs_run.load(Ordering::Relaxed);
        if self.quiet || jobs == 0 {
            return;
        }
        let failed = self.jobs_failed.load(Ordering::Relaxed);
        let cache = match &self.cache {
            Some(store) => {
                let s = store.stats();
                format!(
                    "cache: {} hits ({} disk + {} hot), {} misses, {} published, {} rejected",
                    s.hits(),
                    s.disk_hits,
                    s.hot_hits,
                    s.misses,
                    s.published,
                    s.rejected
                )
            }
            None => "cache: off".to_string(),
        };
        eprintln!(
            "sweep summary: {jobs} jobs, {failed} failed, {elapsed:.1}s elapsed; {cache}",
            elapsed = self.started.elapsed().as_secs_f64()
        );
    }
}

/// Renders the fast-forward annotation for a measurement's progress line
/// (empty when the event-driven loop never skipped, e.g. `LAZYDRAM_NO_SKIP`);
/// cache-served and trace-replayed cells are flagged instead, since they
/// skip the simulation (wholly or GPU-side).
fn skip_note(m: &Measurement) -> String {
    if m.cached {
        " [cache hit]".to_string()
    } else if m.replayed {
        " [trace replay]".to_string()
    } else if m.stats.cycles_skipped == 0 {
        String::new()
    } else {
        format!(" [skipped {:.1}% of cycles]", 100.0 * m.stats.skip_fraction())
    }
}

/// Extracts a readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Renders a normalized-value cell, or `FAIL` for a panicked job.
pub fn norm_cell(result: &JobResult<Measurement>, value: impl Fn(&Measurement) -> f64) -> String {
    match result {
        Ok(m) => format!("{:.3}", value(m)),
        Err(_) => "FAIL".to_string(),
    }
}

/// Renders a percentage cell, or `FAIL` for a panicked job.
pub fn pct_cell(result: &JobResult<Measurement>, value: impl Fn(&Measurement) -> f64) -> String {
    match result {
        Ok(m) => format!("{:.1}%", 100.0 * value(m)),
        Err(_) => "FAIL".to_string(),
    }
}
