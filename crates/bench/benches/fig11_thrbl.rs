//! Figure 11: effect of reducing Th_RBL on SCP — lower thresholds focus the
//! limited coverage on the lowest-RBL rows and remove more activations.

use lazydram_bench::{gpu_config_from_env, MeasureSpec, print_table, scale_from_env, SimBuilder, SweepRunner};
use lazydram_common::{AmsMode, SchedConfig};
use lazydram_workloads::by_name;

fn main() {
    let scale = scale_from_env();
    let cfg = gpu_config_from_env();
    let runner = SweepRunner::from_env();
    let app = by_name("SCP").expect("app");
    let thresholds = [8u32, 4, 2, 1];
    let bases = runner.baselines(std::slice::from_ref(&app), &cfg, scale);
    let base = match &bases[0] {
        Ok(b) => b,
        Err(f) => {
            println!("Figure 11 (SCP): baseline FAILED — {}", f.message);
            return;
        }
    };
    let specs = thresholds
        .iter()
        .map(|&th| {
            MeasureSpec::new(
                SimBuilder::new(&app)
                    .gpu(cfg.clone())
                    .sched(
                        SchedConfig { ams: AmsMode::Static(th), ..SchedConfig::baseline() },
                        format!("AMS({th})"),
                    )
                    .scale(scale),
                base.exact.clone(),
            )
        })
        .collect();
    let results = runner.measure_all(specs);

    let mut rows = Vec::new();
    for (&th, r) in thresholds.iter().zip(&results) {
        rows.push(match r {
            Ok(m) => vec![
                format!("AMS({th})"),
                format!("{:.3}",
                    m.activations as f64 / base.measurement.activations.max(1) as f64),
                format!("{:.1}%", 100.0 * m.coverage),
                format!("{:.1}%", 100.0 * m.app_error),
            ],
            Err(_) => vec![
                format!("AMS({th})"),
                "FAIL".to_string(),
                "FAIL".to_string(),
                "FAIL".to_string(),
            ],
        });
    }
    print_table(
        "Figure 11 (SCP): normalized activations vs Th_RBL",
        &["scheme", "norm acts", "coverage", "app error"],
        &rows,
    );
    // The request-share of each RBL bucket at baseline, explaining why the
    // best threshold sits where it does (Figure 11(b)).
    let h = &base.measurement.stats.dram.rbl;
    let total = h.requests().max(1) as f64;
    println!("\nbaseline request share by activation RBL:");
    for (lo, hi, label) in [(1, 1, "RBL(1)"), (2, 8, "RBL(2-8)"), (9, u32::MAX - 1, "RBL(9+)")] {
        let req: u64 = (lo..=hi.min(h.max_rbl())).map(|k| k as u64 * h.count(k)).sum();
        println!("  {label:>9}: {:.1}%", 100.0 * req as f64 / total);
    }
}
