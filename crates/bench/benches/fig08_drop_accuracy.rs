//! Figure 8: DMS makes AMS drop the *right* request. A nine-request
//! micro-trace over five rows of one bank: AMS alone drops the oldest
//! request (wrongly), AMS+DMS drops the only true RBL(1) row.

use lazydram_bench::{Job, SweepRunner};
use lazydram_common::{AccessKind, AddressMap, AmsMode, DmsMode, GpuConfig, MemSpace, Request,
                      RequestId, SchedConfig};
use lazydram_core::MemoryController;

fn mkreq(map: &AddressMap, id: u64, row: u32, col: u16) -> Request {
    let g = GpuConfig::default();
    let region_bytes = (g.row_bytes * g.num_channels) as u64;
    let rows_span = (g.banks_per_channel as u64) * region_bytes;
    let col_off = (u64::from(col) / 2) * (256 * 6) + (u64::from(col) % 2) * 128;
    let addr = map.line_of(u64::from(row) * rows_span + col_off);
    Request {
        id: RequestId(id),
        addr,
        loc: map.decompose(addr),
        kind: AccessKind::Read,
        space: MemSpace::Global,
        approximable: true,
        arrival: 0,
    }
}

fn run(dms: DmsMode) -> (Vec<u64>, u64, f64) {
    let cfg = GpuConfig::default();
    let map = AddressMap::new(&cfg);
    let sched = SchedConfig {
        dms,
        ams: AmsMode::Static(1),
        ams_warmup_requests: 0,
        coverage_cap: 0.11,
        ..SchedConfig::baseline()
    };
    let mut mc = MemoryController::new(&cfg, &sched);
    let mut id = 0;
    for row in 1..=5u32 {
        id += 1;
        mc.enqueue(mkreq(&map, id, row, 0)).unwrap();
    }
    let mut dropped = Vec::new();
    let mut out = Vec::new();
    let mut batch = Vec::new();
    for _ in 0..20 {
        batch.clear();
        mc.tick(&mut batch);
        out.append(&mut batch);
    }
    for row in 1..=4u32 {
        id += 1;
        mc.enqueue(mkreq(&map, id, row, 1)).unwrap();
    }
    for _ in 0..20_000 {
        batch.clear();
        mc.tick(&mut batch);
        out.append(&mut batch);
        if mc.is_idle() {
            break;
        }
    }
    let _ = mc.drain();
    for r in out {
        if r.approximated {
            dropped.push(r.id.0);
        }
    }
    let st = mc.stats();
    (dropped, st.activations, st.rbl.avg_rbl())
}

fn main() {
    println!("=== Figure 8: drop accuracy of AMS alone vs AMS+DMS ===");
    println!("nine requests over rows R1..R5 of one bank; second batch to R1..R4 arrives late\n");
    let runner = SweepRunner::from_env();
    let results = runner.run(vec![
        Job::new("fig08/AMS-alone", || run(DmsMode::Off)),
        Job::new("fig08/AMS+DMS", || run(DmsMode::Static(64))),
    ]);
    let captions = [
        ("AMS alone  ", "(oldest, row R1 — inaccurate)"),
        ("AMS + DMS  ", "(request 5, row R5 — the true RBL(1) row)"),
    ];
    for (res, (tag, note)) in results.iter().zip(captions) {
        match res {
            Ok((d, acts, rbl)) => {
                println!("{tag}: dropped request ids {d:?} {note}");
                println!("             activations {acts}, Avg-RBL {rbl:.2}");
            }
            Err(f) => println!("{tag}: FAILED — {}", f.message),
        }
    }
}
