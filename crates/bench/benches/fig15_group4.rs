//! Figure 15: delay-only mode for the low-error-tolerance applications
//! (Group 4): normalized row energy and IPC under Static-DMS and Dyn-DMS.

use lazydram_bench::{gpu_config_from_env, mean, MeasureSpec, print_table, scale_from_env, Scheme, SimBuilder, SweepRunner};
use lazydram_workloads::group;

fn main() {
    let scale = scale_from_env();
    let cfg = gpu_config_from_env();
    let schemes = [Scheme::StaticDms, Scheme::DynDms];
    let apps = group(4);
    let runner = SweepRunner::from_env();
    let bases = runner.baselines(&apps, &cfg, scale);
    let mut specs = Vec::new();
    for (app, base) in apps.iter().zip(&bases) {
        let Ok(base) = base else { continue };
        for &scheme in &schemes {
            specs.push(MeasureSpec::new(
                SimBuilder::new(app).gpu(cfg.clone()).scheme(scheme).scale(scale),
                base.exact.clone(),
            ));
        }
    }
    let results = runner.measure_all(specs);

    let mut e_rows = Vec::new();
    let mut i_rows = Vec::new();
    let mut e_cols: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    let mut i_cols: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    let mut cursor = results.iter();
    for (app, base) in apps.iter().zip(&bases) {
        let mut er = vec![app.name.to_string()];
        let mut ir = vec![app.name.to_string()];
        let Ok(base) = base else {
            er.extend(schemes.iter().map(|_| "FAIL".to_string()));
            ir.extend(schemes.iter().map(|_| "FAIL".to_string()));
            e_rows.push(er);
            i_rows.push(ir);
            continue;
        };
        for (i, r) in cursor.by_ref().take(schemes.len()).enumerate() {
            match r {
                Ok(m) => {
                    let ne = m.row_energy_pj / base.measurement.row_energy_pj.max(1e-9);
                    let ni = m.ipc / base.measurement.ipc.max(1e-9);
                    e_cols[i].push(ne);
                    i_cols[i].push(ni);
                    er.push(format!("{ne:.3}"));
                    ir.push(format!("{ni:.3}"));
                }
                Err(_) => {
                    er.push("FAIL".to_string());
                    ir.push("FAIL".to_string());
                }
            }
        }
        e_rows.push(er);
        i_rows.push(ir);
    }
    for (rows, cols) in [(&mut e_rows, &e_cols), (&mut i_rows, &i_cols)] {
        let mut mrow = vec!["MEAN".to_string()];
        for c in cols.iter() {
            mrow.push(format!("{:.3}", mean(c)));
        }
        rows.push(mrow);
    }
    print_table("Figure 15(a): Group-4 normalized row energy (delay-only)",
                &["app", "Static-DMS", "Dyn-DMS"], &e_rows);
    print_table("Figure 15(b): Group-4 normalized IPC (delay-only)",
                &["app", "Static-DMS", "Dyn-DMS"], &i_rows);
}
