//! Figure 15: delay-only mode for the low-error-tolerance applications
//! (Group 4): normalized row energy and IPC under Static-DMS and Dyn-DMS.

use lazydram_bench::{mean, measure, measure_baseline, print_table, scale_from_env};
use lazydram_common::{GpuConfig, SchedConfig};
use lazydram_workloads::group;

fn main() {
    let scale = scale_from_env();
    let cfg = GpuConfig::default();
    let schemes = [
        ("Static-DMS", SchedConfig::static_dms()),
        ("Dyn-DMS", SchedConfig::dyn_dms()),
    ];
    let mut e_rows = Vec::new();
    let mut i_rows = Vec::new();
    let mut e_cols: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    let mut i_cols: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for app in group(4) {
        let (base, exact) = measure_baseline(&app, &cfg, scale);
        let mut er = vec![app.name.to_string()];
        let mut ir = vec![app.name.to_string()];
        for (i, (label, sched)) in schemes.iter().enumerate() {
            let m = measure(&app, &cfg, sched, scale, label, &exact);
            let ne = m.row_energy_pj / base.row_energy_pj.max(1e-9);
            let ni = m.ipc / base.ipc.max(1e-9);
            e_cols[i].push(ne);
            i_cols[i].push(ni);
            er.push(format!("{ne:.3}"));
            ir.push(format!("{ni:.3}"));
        }
        e_rows.push(er);
        i_rows.push(ir);
    }
    for (rows, cols) in [(&mut e_rows, &e_cols), (&mut i_rows, &i_cols)] {
        let mut mrow = vec!["MEAN".to_string()];
        for c in cols.iter() {
            mrow.push(format!("{:.3}", mean(c)));
        }
        rows.push(mrow);
    }
    print_table("Figure 15(a): Group-4 normalized row energy (delay-only)",
                &["app", "Static-DMS", "Dyn-DMS"], &e_rows);
    print_table("Figure 15(b): Group-4 normalized IPC (delay-only)",
                &["app", "Static-DMS", "Dyn-DMS"], &i_rows);
}
