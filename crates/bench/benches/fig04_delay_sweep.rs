//! Figure 4: effect of the DMS delay on (a) row activations and (b) IPC,
//! both normalized to the no-delay baseline.

use lazydram_bench::{apps_from_env, gpu_config_from_env, mean, MeasureSpec, print_table, scale_from_env, SimBuilder, SweepRunner};
use lazydram_common::{DmsMode, SchedConfig};

fn main() {
    let scale = scale_from_env();
    let apps = apps_from_env();
    let delays = [64u32, 128, 256, 512, 1024, 2048];
    let cfg = gpu_config_from_env();
    let runner = SweepRunner::from_env();
    let bases = runner.baselines(&apps, &cfg, scale);
    let mut specs = Vec::new();
    for (app, base) in apps.iter().zip(&bases) {
        let Ok(base) = base else { continue };
        for &x in &delays {
            specs.push(MeasureSpec::new(
                SimBuilder::new(app)
                    .gpu(cfg.clone())
                    .sched(
                        SchedConfig { dms: DmsMode::Static(x), ..SchedConfig::baseline() },
                        format!("DMS({x})"),
                    )
                    .scale(scale),
                base.exact.clone(),
            ));
        }
    }
    let results = runner.measure_all(specs);

    let mut act_rows = Vec::new();
    let mut ipc_rows = Vec::new();
    let mut act_cols: Vec<Vec<f64>> = vec![Vec::new(); delays.len()];
    let mut ipc_cols: Vec<Vec<f64>> = vec![Vec::new(); delays.len()];
    let mut cursor = results.iter();
    for (app, base) in apps.iter().zip(&bases) {
        let mut acts = vec![app.name.to_string()];
        let mut ipcs = vec![app.name.to_string()];
        let Ok(base) = base else {
            acts.extend(delays.iter().map(|_| "FAIL".to_string()));
            ipcs.extend(delays.iter().map(|_| "FAIL".to_string()));
            act_rows.push(acts);
            ipc_rows.push(ipcs);
            continue;
        };
        for (i, r) in cursor.by_ref().take(delays.len()).enumerate() {
            match r {
                Ok(m) => {
                    let na = m.activations as f64 / base.measurement.activations.max(1) as f64;
                    let ni = m.ipc / base.measurement.ipc.max(1e-9);
                    act_cols[i].push(na);
                    ipc_cols[i].push(ni);
                    acts.push(format!("{na:.3}"));
                    ipcs.push(format!("{ni:.3}"));
                }
                Err(_) => {
                    acts.push("FAIL".to_string());
                    ipcs.push("FAIL".to_string());
                }
            }
        }
        act_rows.push(acts);
        ipc_rows.push(ipcs);
    }
    let mut mrow = vec!["MEAN".to_string()];
    for c in &act_cols {
        mrow.push(format!("{:.3}", mean(c)));
    }
    act_rows.push(mrow);
    let mut mrow = vec!["MEAN".to_string()];
    for c in &ipc_cols {
        mrow.push(format!("{:.3}", mean(c)));
    }
    ipc_rows.push(mrow);
    let header: Vec<String> = std::iter::once("app".into())
        .chain(delays.iter().map(|d| format!("DMS({d})")))
        .collect();
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    print_table("Figure 4(a): activations vs delay (normalized to baseline)", &hdr, &act_rows);
    print_table("Figure 4(b): IPC vs delay (normalized to baseline)", &hdr, &ipc_rows);
}
