//! Figure 13: effect of the pending-queue size on activations when the
//! maximum delay DMS(2048) is applied (normalized to the no-delay baseline
//! at queue size 128).

use lazydram_bench::{apps_from_env, mean, print_table, scale_from_env};
use lazydram_common::{DmsMode, GpuConfig, SchedConfig};
use lazydram_workloads::run_app;

fn main() {
    let scale = scale_from_env();
    let apps = apps_from_env();
    let sizes = [32usize, 64, 128, 256];
    let mut rows = Vec::new();
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); sizes.len()];
    for app in &apps {
        let base = run_app(app, &GpuConfig::default(), &SchedConfig::baseline(), scale);
        let base_acts = base.stats.dram.activations.max(1) as f64;
        let mut cells = vec![app.name.to_string()];
        for (i, &q) in sizes.iter().enumerate() {
            let cfg = GpuConfig { pending_queue_size: q, ..GpuConfig::default() };
            let sched = SchedConfig { dms: DmsMode::Static(2048), ..SchedConfig::baseline() };
            let r = run_app(app, &cfg, &sched, scale);
            let norm = r.stats.dram.activations as f64 / base_acts;
            cols[i].push(norm);
            cells.push(format!("{norm:.3}"));
        }
        rows.push(cells);
    }
    let mut mrow = vec!["MEAN".to_string()];
    for c in &cols {
        mrow.push(format!("{:.3}", mean(c)));
    }
    rows.push(mrow);
    let header: Vec<String> = std::iter::once("app".into())
        .chain(sizes.iter().map(|s| format!("q={s}")))
        .collect();
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    print_table(
        "Figure 13: activations under DMS(2048) vs queue size (normalized to baseline)",
        &hdr,
        &rows,
    );
}
