//! Figure 13: effect of the pending-queue size on activations when the
//! maximum delay DMS(2048) is applied (normalized to the no-delay baseline
//! at queue size 128).

use lazydram_bench::{apps_from_env, gpu_config_from_env, mean, MeasureSpec, print_table, scale_from_env, SimBuilder, SweepRunner};
use lazydram_common::{DmsMode, GpuConfig, SchedConfig};

fn main() {
    let scale = scale_from_env();
    let apps = apps_from_env();
    let sizes = [32usize, 64, 128, 256];
    let runner = SweepRunner::from_env();
    let cfg = gpu_config_from_env();
    let bases = runner.baselines(&apps, &cfg, scale);
    let mut specs = Vec::new();
    for (app, base) in apps.iter().zip(&bases) {
        let Ok(base) = base else { continue };
        for &q in &sizes {
            specs.push(MeasureSpec::new(
                SimBuilder::new(app)
                    .gpu(GpuConfig { pending_queue_size: q, ..cfg.clone() })
                    .sched(
                        SchedConfig { dms: DmsMode::Static(2048), ..SchedConfig::baseline() },
                        format!("DMS(2048)/q={q}"),
                    )
                    .scale(scale),
                base.exact.clone(),
            ));
        }
    }
    let results = runner.measure_all(specs);

    let mut rows = Vec::new();
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); sizes.len()];
    let mut cursor = results.iter();
    for (app, base) in apps.iter().zip(&bases) {
        let mut cells = vec![app.name.to_string()];
        let Ok(base) = base else {
            cells.extend(sizes.iter().map(|_| "FAIL".to_string()));
            rows.push(cells);
            continue;
        };
        let base_acts = base.measurement.activations.max(1) as f64;
        for (i, r) in cursor.by_ref().take(sizes.len()).enumerate() {
            match r {
                Ok(m) => {
                    let norm = m.activations as f64 / base_acts;
                    cols[i].push(norm);
                    cells.push(format!("{norm:.3}"));
                }
                Err(_) => cells.push("FAIL".to_string()),
            }
        }
        rows.push(cells);
    }
    let mut mrow = vec!["MEAN".to_string()];
    for c in &cols {
        mrow.push(format!("{:.3}", mean(c)));
    }
    rows.push(mrow);
    let header: Vec<String> = std::iter::once("app".into())
        .chain(sizes.iter().map(|s| format!("q={s}")))
        .collect();
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    print_table(
        "Figure 13: activations under DMS(2048) vs queue size (normalized to baseline)",
        &hdr,
        &rows,
    );
}
