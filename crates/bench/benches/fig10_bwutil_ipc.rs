//! Figure 10: IPC and DRAM bandwidth utilization are linearly correlated —
//! the observation Dyn-DMS relies on to profile performance locally at the
//! memory controller.

use lazydram_bench::{apps_from_env, bw_util, gpu_config_from_env, Measurement, MeasureSpec, print_table, scale_from_env, SimBuilder, SweepRunner};
use lazydram_common::{DmsMode, SchedConfig};

fn main() {
    let scale = scale_from_env();
    let apps = apps_from_env();
    let cfg = gpu_config_from_env();
    let runner = SweepRunner::from_env();
    let delays = [256u32, 1024]; // delay = 0 is the cached baseline run
    let bases = runner.baselines(&apps, &cfg, scale);
    let mut specs = Vec::new();
    for (app, base) in apps.iter().zip(&bases) {
        let Ok(base) = base else { continue };
        for &delay in &delays {
            specs.push(MeasureSpec::new(
                SimBuilder::new(app)
                    .gpu(cfg.clone())
                    .sched(
                        SchedConfig { dms: DmsMode::Static(delay), ..SchedConfig::baseline() },
                        format!("DMS({delay})"),
                    )
                    .scale(scale),
                base.exact.clone(),
            ));
        }
    }
    let results = runner.measure_all(specs);

    let mut rows = Vec::new();
    let mut corrs = Vec::new();
    let mut cursor = results.iter();
    for (app, base) in apps.iter().zip(&bases) {
        let mut samples: Vec<(u32, Option<&Measurement>)> = Vec::new();
        match base {
            Ok(b) => {
                samples.push((0, Some(&b.measurement)));
                for (&delay, r) in delays.iter().zip(cursor.by_ref().take(delays.len())) {
                    samples.push((delay, r.as_ref().ok()));
                }
            }
            Err(_) => samples.push((0, None)),
        }
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (delay, m) in &samples {
            match m {
                Some(m) => {
                    let bw = bw_util(&m.stats, cfg.num_channels);
                    rows.push(vec![
                        app.name.to_string(),
                        delay.to_string(),
                        format!("{:.4}", bw),
                        format!("{:.3}", m.ipc),
                    ]);
                    xs.push(bw);
                    ys.push(m.ipc);
                }
                None => rows.push(vec![
                    app.name.to_string(),
                    delay.to_string(),
                    "FAIL".to_string(),
                    "FAIL".to_string(),
                ]),
            }
        }
        // Per-app correlation of (BWUTIL, IPC) across the three delays.
        if xs.len() == 3 {
            let mx = xs.iter().sum::<f64>() / 3.0;
            let my = ys.iter().sum::<f64>() / 3.0;
            let cov: f64 = xs.iter().zip(&ys).map(|(a, b)| (a - mx) * (b - my)).sum();
            let vx: f64 = xs.iter().map(|a| (a - mx).powi(2)).sum();
            let vy: f64 = ys.iter().map(|b| (b - my).powi(2)).sum();
            if vx > 1e-12 && vy > 1e-12 {
                corrs.push(cov / (vx.sqrt() * vy.sqrt()));
            }
        }
    }
    print_table(
        "Figure 10: BWUTIL vs IPC samples (baseline + two delays per app)",
        &["app", "delay", "BWUTIL", "IPC"],
        &rows,
    );
    let avg = corrs.iter().sum::<f64>() / corrs.len().max(1) as f64;
    println!("\nmean per-app Pearson correlation of BWUTIL and IPC: {avg:.3} (paper: linear)");
}
