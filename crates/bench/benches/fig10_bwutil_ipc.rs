//! Figure 10: IPC and DRAM bandwidth utilization are linearly correlated —
//! the observation Dyn-DMS relies on to profile performance locally at the
//! memory controller.

use lazydram_bench::{apps_from_env, bw_util, print_table, scale_from_env};
use lazydram_common::{DmsMode, GpuConfig, SchedConfig};
use lazydram_workloads::run_app;

fn main() {
    let scale = scale_from_env();
    let apps = apps_from_env();
    let cfg = GpuConfig::default();
    let mut rows = Vec::new();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for app in &apps {
        for delay in [0u32, 256, 1024] {
            let sched = SchedConfig {
                dms: if delay == 0 { DmsMode::Off } else { DmsMode::Static(delay) },
                ..SchedConfig::baseline()
            };
            let r = run_app(app, &cfg, &sched, scale);
            let bw = bw_util(&r.stats, cfg.num_channels);
            rows.push(vec![
                app.name.to_string(),
                delay.to_string(),
                format!("{:.4}", bw),
                format!("{:.3}", r.stats.ipc()),
            ]);
            xs.push(bw);
            ys.push(r.stats.ipc());
        }
    }
    print_table(
        "Figure 10: BWUTIL vs IPC samples (baseline + two delays per app)",
        &["app", "delay", "BWUTIL", "IPC"],
        &rows,
    );
    // Per-app correlation of (BWUTIL, IPC) across the three delays.
    let mut corrs = Vec::new();
    for chunk in xs.chunks(3).zip(ys.chunks(3)) {
        let (cx, cy) = chunk;
        let mx = cx.iter().sum::<f64>() / 3.0;
        let my = cy.iter().sum::<f64>() / 3.0;
        let cov: f64 = cx.iter().zip(cy).map(|(a, b)| (a - mx) * (b - my)).sum();
        let vx: f64 = cx.iter().map(|a| (a - mx).powi(2)).sum();
        let vy: f64 = cy.iter().map(|b| (b - my).powi(2)).sum();
        if vx > 1e-12 && vy > 1e-12 {
            corrs.push(cov / (vx.sqrt() * vy.sqrt()));
        }
    }
    let avg = corrs.iter().sum::<f64>() / corrs.len().max(1) as f64;
    println!("\nmean per-app Pearson correlation of BWUTIL and IPC: {avg:.3} (paper: linear)");
}
