//! Figure 2: effect of the FR-FCFS pending-queue size on the number of row
//! activations, normalized to the baseline size of 128.

use lazydram_bench::{apps_from_env, mean, print_table, scale_from_env};
use lazydram_common::{GpuConfig, SchedConfig};
use lazydram_workloads::run_app;

fn main() {
    let scale = scale_from_env();
    let apps = apps_from_env();
    let sizes = [16usize, 32, 64, 128, 256];
    let header: Vec<String> = std::iter::once("app".to_string())
        .chain(sizes.iter().map(|s| format!("q={s}")))
        .collect();
    let mut rows = Vec::new();
    let mut per_size: Vec<Vec<f64>> = vec![Vec::new(); sizes.len()];
    for app in &apps {
        let mut cells = vec![app.name.to_string()];
        let mut acts = Vec::new();
        for &q in &sizes {
            let cfg = GpuConfig { pending_queue_size: q, ..GpuConfig::default() };
            let r = run_app(app, &cfg, &SchedConfig::baseline(), scale);
            acts.push(r.stats.dram.activations as f64);
        }
        let base = acts[3]; // q = 128
        for (i, &a) in acts.iter().enumerate() {
            let norm = a / base.max(1.0);
            per_size[i].push(norm);
            cells.push(format!("{norm:.3}"));
        }
        rows.push(cells);
    }
    let mut avg = vec!["MEAN".to_string()];
    for v in &per_size {
        avg.push(format!("{:.3}", mean(v)));
    }
    rows.push(avg);
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    print_table(
        "Figure 2: activations vs pending-queue size (normalized to 128)",
        &hdr,
        &rows,
    );
}
