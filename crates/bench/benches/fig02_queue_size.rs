//! Figure 2: effect of the FR-FCFS pending-queue size on the number of row
//! activations, normalized to the baseline size of 128.

use lazydram_bench::{apps_from_env, gpu_config_from_env, mean, MeasureSpec, print_table, scale_from_env, Scheme, SimBuilder, SweepRunner};
use lazydram_common::GpuConfig;

fn main() {
    let scale = scale_from_env();
    let apps = apps_from_env();
    let runner = SweepRunner::from_env();
    let cfg = gpu_config_from_env();
    // q = 128 is the default config, i.e. exactly the cached baseline run.
    let sweep_sizes = [16usize, 32, 64, 256];
    let bases = runner.baselines(&apps, &cfg, scale);
    let mut specs = Vec::new();
    for (app, base) in apps.iter().zip(&bases) {
        let Ok(base) = base else { continue };
        for &q in &sweep_sizes {
            specs.push(MeasureSpec::new(
                SimBuilder::new(app)
                    .gpu(GpuConfig { pending_queue_size: q, ..cfg.clone() })
                    .sched(Scheme::Baseline.sched(), format!("q={q}"))
                    .scale(scale),
                base.exact.clone(),
            ));
        }
    }
    let results = runner.measure_all(specs);

    let sizes = [16usize, 32, 64, 128, 256];
    let mut rows = Vec::new();
    let mut per_size: Vec<Vec<f64>> = vec![Vec::new(); sizes.len()];
    let mut cursor = results.iter();
    for (app, base) in apps.iter().zip(&bases) {
        let mut cells = vec![app.name.to_string()];
        let Ok(base) = base else {
            cells.extend(sizes.iter().map(|_| "FAIL".to_string()));
            rows.push(cells);
            continue;
        };
        let norm_base = (base.measurement.activations as f64).max(1.0);
        // Columns q=16,32,64 from the sweep, q=128 from the baseline, q=256 last.
        let sweep: Vec<_> = cursor.by_ref().take(sweep_sizes.len()).collect();
        let mut col = 0;
        for (i, &q) in sizes.iter().enumerate() {
            let acts = if q == 128 {
                Some(base.measurement.activations as f64)
            } else {
                let r = sweep[col];
                col += 1;
                r.as_ref().ok().map(|m| m.activations as f64)
            };
            match acts {
                Some(a) => {
                    let norm = a / norm_base;
                    per_size[i].push(norm);
                    cells.push(format!("{norm:.3}"));
                }
                None => cells.push("FAIL".to_string()),
            }
        }
        rows.push(cells);
    }
    let mut avg = vec!["MEAN".to_string()];
    for v in &per_size {
        avg.push(format!("{:.3}", mean(v)));
    }
    rows.push(avg);
    let header: Vec<String> = std::iter::once("app".to_string())
        .chain(sizes.iter().map(|s| format!("q={s}")))
        .collect();
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    print_table(
        "Figure 2: activations vs pending-queue size (normalized to 128)",
        &hdr,
        &rows,
    );
}
