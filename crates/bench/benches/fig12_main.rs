//! Figure 12: the paper's headline result. Normalized row energy, IPC,
//! application error and coverage for all six schemes over the
//! error-tolerant applications (groups 1-3), plus the HBM1/HBM2
//! memory-system-energy projection of Section V.

use lazydram_bench::{gpu_config_from_env, mean, MeasureSpec, print_table, scale_from_env, Scheme, SimBuilder, SweepRunner};
use lazydram_energy::{CardBudget, EnergyModel, MemoryTech};
use lazydram_workloads::all_apps;

fn main() {
    let scale = scale_from_env();
    let cfg = gpu_config_from_env();
    let apps: Vec<_> = all_apps().into_iter().filter(|a| a.error_tolerant()).collect();
    let schemes = Scheme::PAPER;
    let runner = SweepRunner::from_env();
    let bases = runner.baselines(&apps, &cfg, scale);
    let mut specs = Vec::new();
    for (app, base) in apps.iter().zip(&bases) {
        let Ok(base) = base else { continue };
        for &scheme in &schemes {
            specs.push(MeasureSpec::new(
                SimBuilder::new(app).gpu(cfg.clone()).scheme(scheme).scale(scale),
                base.exact.clone(),
            ));
        }
    }
    let results = runner.measure_all(specs);

    let mut energy_rows = Vec::new();
    let mut ipc_rows = Vec::new();
    let mut err_rows = Vec::new();
    let mut cov_rows = Vec::new();
    let mut energy_cols: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    let mut ipc_cols: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    let mut err_cols: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    let mut cov_cols: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    let mut cursor = results.iter();
    for (app, base) in apps.iter().zip(&bases) {
        let mut er = vec![format!("{}(g{})", app.name, app.group)];
        let mut ir = er.clone();
        let mut xr = er.clone();
        let mut cr = er.clone();
        let Ok(base) = base else {
            for row in [&mut er, &mut ir, &mut xr, &mut cr] {
                row.extend(schemes.iter().map(|_| "FAIL".to_string()));
            }
            energy_rows.push(er);
            ipc_rows.push(ir);
            err_rows.push(xr);
            cov_rows.push(cr);
            continue;
        };
        for (i, r) in cursor.by_ref().take(schemes.len()).enumerate() {
            match r {
                Ok(m) => {
                    let ne = m.row_energy_pj / base.measurement.row_energy_pj.max(1e-9);
                    let ni = m.ipc / base.measurement.ipc.max(1e-9);
                    energy_cols[i].push(ne);
                    ipc_cols[i].push(ni);
                    err_cols[i].push(m.app_error);
                    cov_cols[i].push(m.coverage);
                    er.push(format!("{ne:.3}"));
                    ir.push(format!("{ni:.3}"));
                    xr.push(format!("{:.1}%", 100.0 * m.app_error));
                    cr.push(format!("{:.1}%", 100.0 * m.coverage));
                }
                Err(_) => {
                    for row in [&mut er, &mut ir, &mut xr, &mut cr] {
                        row.push("FAIL".to_string());
                    }
                }
            }
        }
        energy_rows.push(er);
        ipc_rows.push(ir);
        err_rows.push(xr);
        cov_rows.push(cr);
    }
    let header: Vec<String> = std::iter::once("app".to_string())
        .chain(schemes.iter().map(|s| s.label().to_string()))
        .collect();
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();

    for (title, rows, cols, pctfmt) in [
        ("Figure 12(a): normalized row energy", &mut energy_rows, &energy_cols, false),
        ("Figure 12(b): normalized IPC", &mut ipc_rows, &ipc_cols, false),
        ("Figure 12(c): application error", &mut err_rows, &err_cols, true),
        ("Figure 12(d): coverage", &mut cov_rows, &cov_cols, true),
    ] {
        let mut mrow = vec!["MEAN".to_string()];
        for c in cols {
            mrow.push(if pctfmt {
                format!("{:.1}%", 100.0 * mean(c))
            } else {
                format!("{:.3}", mean(c))
            });
        }
        rows.push(mrow);
        print_table(title, &hdr, rows);
    }

    // Section V: memory-system energy projection for the headline scheme.
    let combo_ratio = mean(&energy_cols[schemes.len() - 1]);
    println!("\n=== Section V: memory-system energy projection (Dyn-DMS+Dyn-AMS) ===");
    println!("mean row-energy ratio: {combo_ratio:.3} (paper: 0.56 → 44% reduction)");
    for tech in [MemoryTech::Hbm1, MemoryTech::Hbm2] {
        let model = EnergyModel::new(tech);
        let red = model.system_energy_reduction(combo_ratio);
        let budget = CardBudget::default();
        println!(
            "{tech:?}: memory-system energy −{:.1}%  → {:.1} W saved at peak, or +{:.0} GB/s in a 60 W budget",
            100.0 * red,
            budget.power_saving_w(red),
            budget.bandwidth_headroom_gbs(red),
        );
    }
}
