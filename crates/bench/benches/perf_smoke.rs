//! Timed smoke sweep for the simulator hot paths.
//!
//! Runs a representative slice of the suite under the baseline and
//! Static-DMS schemes, once with cycle skipping enabled and once with the
//! naive loop (`with_cycle_skipping(false)`), and reports per-run wall-clock
//! time, speedup, and the fraction of core cycles skipped. Each timing is
//! the minimum of `LAZYDRAM_BENCH_REPS` runs (default 3). Results are also
//! written as a JSON array to `LAZYDRAM_BENCH_OUT` (default
//! `BENCH_PR4.json` in the current directory) for regression tracking; when
//! the binary was built with `--features prof`, every JSON row carries the
//! profiler's wall-clock phase breakdown (`prof` key).
//!
//! Two comparisons are recorded per (app, scheme):
//!
//! * `noskip_s` vs `skip_s` — the naive loop vs fast-forward *within this
//!   tree*. This isolates the cycle-skipping contribution.
//! * `pre_pr_s` vs `skip_s` — the recorded pre-PR wall clock (from
//!   `baselines/pre_pr9.tsv`, measured at the revision before the analytic
//!   compute-burst fast-forward) vs the current loop. This is the PR's
//!   end-to-end speedup and the number tracked as the repo's perf
//!   trajectory. Override the baseline file with `LAZYDRAM_BASELINE`; when
//!   the file is missing the columns are omitted. **The baseline was
//!   recorded at `LAZYDRAM_SCALE=0.2`** — comparisons at any other scale
//!   are apples-to-oranges.
//!
//! # Regression gate
//!
//! With `LAZYDRAM_MAX_REGRESSION=<ratio>` set (e.g. `2.0`), the benchmark
//! **exits non-zero** if any (app, scheme) runs slower than `ratio` times
//! its recorded pre-PR wall clock. `tier1.sh` sets this so a perf
//! regression fails the suite loudly instead of drifting in silently.
//!
//! # Trace replay smoke (`BENCH_PR6.json`)
//!
//! A second section captures each app's baseline request trace once and
//! replays the fig04 delay sweep through MC + DRAM only, recording the
//! replayed-vs-executed **speedup** and **error envelope** (relative error
//! in activations / Avg-RBL / row energy per delay cell) to
//! `LAZYDRAM_TRACE_BENCH_OUT` (default `BENCH_PR6.json`). With
//! `LAZYDRAM_MIN_TRACE_SPEEDUP=<ratio>` set (tier1.sh uses 5), the
//! benchmark exits non-zero unless at least one app's replay-only sweep
//! speedup clears the ratio (per-app speedups vary with the app's
//! request density — a memory-heavy stream pays for replay roughly what
//! it pays for execution); a replay that leaves any request unserved
//! always fails.
//!
//! # Intra-run parallelism smoke (`BENCH_PR7.json`)
//!
//! A third section times the same run at `cores=1` vs `cores=4` (the phased
//! parallel tick, DESIGN.md §12), asserts the two produce **identical
//! statistics**, and writes wall clocks plus the profiler breakdown — the
//! `sync` and `idle` phases attribute the pool's barrier and park time — to
//! `LAZYDRAM_CORES_BENCH_OUT` (default `BENCH_PR7.json`). Two optional
//! gates: `LAZYDRAM_MAX_CORES_OVERHEAD=<ratio>` fails the run when cores=4
//! is slower than `ratio` × cores=1 (on a 1-CPU host the pool degrades to
//! the inline path, so the phased restructure must be near-free), and
//! `LAZYDRAM_MIN_CORES_SPEEDUP=<ratio>` fails when cores=4 does not reach
//! `ratio` × faster (only meaningful — and only set by `tier1.sh` — when
//! the host actually has multiple CPUs).
//!
//! # Result-cache smoke (`BENCH_PR8.json`)
//!
//! A fourth section runs a fig04-style delay sweep against a fresh
//! content-addressed store twice — cold (populating it) and warm (served
//! from it by a fresh runner, so every hit takes the disk path) — asserts
//! the warm measurements equal the cold ones and that the warm run
//! simulated nothing, and writes both wall clocks plus the store counters
//! to `LAZYDRAM_CACHE_BENCH_OUT` (default `BENCH_PR8.json`). With
//! `LAZYDRAM_MIN_CACHE_SPEEDUP=<ratio>` set (tier1.sh uses 10), the
//! benchmark exits non-zero unless the warm sweep beats the cold one by at
//! least the ratio — the PR 8 acceptance floor.
//!
//! # Compute-skip smoke (`BENCH_PR9.json`)
//!
//! A fifth section distils the main sweep into the PR 9 trajectory file
//! (`LAZYDRAM_PR9_BENCH_OUT`, default `BENCH_PR9.json`): per (app, scheme)
//! the wall-clock ratio against `pre_pr9.tsv`, the skip fraction split into
//! idle vs analytic compute skips, and — when built with `--features prof` —
//! the `sm_issue` phase wall clock against the pre-PR column recorded in
//! the baseline file (the phase the analytic fast-forward attacks). The
//! per-app regression gate stays `LAZYDRAM_MAX_REGRESSION` on the main
//! sweep; this section only records.
//!
//! This is a *smoke* benchmark: single-digit runs, no statistics. It is
//! meant to catch order-of-magnitude regressions (e.g. fast-forward silently
//! disengaging, a hash map sneaking back onto the lane path), not
//! single-digit-percent drifts.

use lazydram_bench::{
    scale_from_env, CacheMode, CachePolicy, MeasureSpec, Measurement, SimBuilder, SweepRunner,
    TraceSim,
};
use lazydram_common::json::{array, JsonObject};
use lazydram_common::{DmsMode, GpuConfig, SchedConfig};
use lazydram_energy::{EnergyModel, MemoryTech};
use lazydram_workloads::by_name;
use std::time::Instant;

/// Memory-bound streamers (where DMS stalls dominate and fast-forward should
/// shine) plus cache-friendly compute apps (where it should at least not
/// hurt).
const APPS: &[&str] = &["SLA", "CONS", "ATAX", "MVT", "SCP", "GEMM"];

struct Row {
    app: &'static str,
    scheme: &'static str,
    skip_s: f64,
    noskip_s: f64,
    pre_pr_s: Option<f64>,
    pre_sm_issue_s: Option<f64>,
    skip_pct: f64,
    compute_skip_pct: f64,
    core_cycles: u64,
    cycles_skipped: u64,
    compute_cycles_skipped: u64,
    prof: lazydram_common::ProfReport,
}

fn timed_run(
    app: &str,
    sched: &SchedConfig,
    scale: f64,
    skip: bool,
    reps: usize,
) -> (f64, lazydram_common::SimStats) {
    let mut best = f64::INFINITY;
    let mut stats = None;
    let spec = by_name(app).expect("known app");
    let run = SimBuilder::new(&spec)
        .sched(sched.clone(), "perf")
        .scale(scale)
        .cycle_skipping(skip)
        .build();
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let r = run.run();
        best = best.min(t0.elapsed().as_secs_f64());
        stats = Some(r.stats);
    }
    (best, stats.expect("at least one rep"))
}

/// One `app\tscheme\tsecs[\tsm_issue_secs]` line of the pre-PR baseline.
struct BaselineRow {
    app: String,
    scheme: String,
    secs: f64,
    /// Pre-PR `sm_issue` profiler phase seconds (the optional 4th column).
    sm_issue_s: Option<f64>,
}

/// Loads the pre-PR baseline file; `#` lines are comments. Returns `None`
/// when the file is absent (e.g. a stripped checkout); malformed lines in a
/// *present* file are an error.
fn load_baseline() -> Option<Vec<BaselineRow>> {
    load_baseline_file("LAZYDRAM_BASELINE", "pre_pr9.tsv")
}

/// [`load_baseline`] for an arbitrary `(env override, default file)` pair —
/// each PR's trajectory gate pins its own pre-PR recording.
fn load_baseline_file(env: &str, default_name: &str) -> Option<Vec<BaselineRow>> {
    let path = std::env::var(env)
        .unwrap_or_else(|_| format!("{}/baselines/{default_name}", env!("CARGO_MANIFEST_DIR")));
    let text = std::fs::read_to_string(&path).ok()?;
    let mut rows = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split('\t');
        let (Some(app), Some(scheme), Some(secs)) = (it.next(), it.next(), it.next()) else {
            panic!("malformed baseline line in {path}: {line:?}");
        };
        let secs: f64 = secs
            .parse()
            .unwrap_or_else(|e| panic!("bad seconds in {path}: {line:?} ({e})"));
        let sm_issue_s = it.next().map(|s| {
            s.parse()
                .unwrap_or_else(|e| panic!("bad sm_issue seconds in {path}: {line:?} ({e})"))
        });
        rows.push(BaselineRow { app: app.to_string(), scheme: scheme.to_string(), secs, sm_issue_s });
    }
    Some(rows)
}

/// One delay cell of the trace replay smoke: executed vs replayed.
struct TraceCell {
    delay: u32,
    exec_s: f64,
    replay_s: f64,
    act_err: f64,
    rbl_err: f64,
    energy_err: f64,
}

/// Relative error of `replayed` against the executed reference.
fn rel_err(replayed: f64, executed: f64) -> f64 {
    if executed == 0.0 {
        if replayed == 0.0 { 0.0 } else { f64::INFINITY }
    } else {
        (replayed - executed).abs() / executed
    }
}

/// Captures each app's baseline trace and replays the fig04 delay sweep,
/// writing speedup + error envelope to `LAZYDRAM_TRACE_BENCH_OUT`. Returns
/// `false` when `LAZYDRAM_MIN_TRACE_SPEEDUP` is set and no app's
/// replay-only sweep speedup reaches it.
fn trace_smoke(scale: f64) -> bool {
    const TRACE_APPS: &[&str] = &["SCP", "SLA"];
    let delays = [64u32, 128, 256, 512, 1024, 2048];
    let cfg = GpuConfig::default();
    let energy = EnergyModel::new(MemoryTech::Gddr5);
    let min_speedup = ratio_from_env("LAZYDRAM_MIN_TRACE_SPEEDUP");
    let mut best_speedup = 0.0_f64;
    let mut json_rows = Vec::new();
    eprintln!("\ntrace replay smoke (fig04 delay sweep, capture once, replay each cell):");
    for app in TRACE_APPS {
        let spec = by_name(app).expect("known app");
        let t0 = Instant::now();
        let r = SimBuilder::new(&spec)
            .sched(SchedConfig::baseline(), "baseline")
            .scale(scale)
            .trace(true)
            .build()
            .run();
        let capture_s = t0.elapsed().as_secs_f64();
        let trace = r.trace.expect("capture enabled");
        let mut cells = Vec::new();
        for &x in &delays {
            let sched = SchedConfig { dms: DmsMode::Static(x), ..SchedConfig::baseline() };
            let t0 = Instant::now();
            let exec = SimBuilder::new(&spec)
                .sched(sched.clone(), "DMS")
                .scale(scale)
                .build()
                .run()
                .stats;
            let exec_s = t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            let report = TraceSim::new(&cfg, &sched)
                .replay(&trace)
                .unwrap_or_else(|e| panic!("{app} trace replay failed: {e}"));
            let replay_s = t0.elapsed().as_secs_f64();
            assert_eq!(
                report.unserved, 0,
                "{app}/DMS({x}): replay left {} requests unserved",
                report.unserved
            );
            cells.push(TraceCell {
                delay: x,
                exec_s,
                replay_s,
                act_err: rel_err(
                    report.stats.dram.activations as f64,
                    exec.dram.activations as f64,
                ),
                rbl_err: rel_err(report.stats.dram.avg_rbl(), exec.dram.avg_rbl()),
                energy_err: rel_err(
                    energy.breakdown(&report.stats.dram).row_energy_pj,
                    energy.breakdown(&exec.dram).row_energy_pj,
                ),
            });
        }
        let exec_sweep_s: f64 = cells.iter().map(|c| c.exec_s).sum();
        let replay_sweep_s: f64 = cells.iter().map(|c| c.replay_s).sum();
        let speedup = exec_sweep_s / replay_sweep_s.max(1e-9);
        let max_err = cells
            .iter()
            .flat_map(|c| [c.act_err, c.rbl_err, c.energy_err])
            .fold(0.0_f64, f64::max);
        eprintln!(
            "  {app}: {n} requests, executed {exec_sweep_s:.3}s vs replayed {replay_sweep_s:.3}s \
             ({speedup:.1}x; {with_cap:.1}x with the {capture_s:.3}s capture), \
             worst envelope error {err:.1}%",
            n = trace.len(),
            with_cap = exec_sweep_s / (replay_sweep_s + capture_s).max(1e-9),
            err = 100.0 * max_err,
        );
        best_speedup = best_speedup.max(speedup);
        let cell_json: Vec<String> = cells
            .iter()
            .map(|c| {
                let mut o = JsonObject::new();
                o.u64("delay", u64::from(c.delay))
                    .f64("exec_s", c.exec_s)
                    .f64("replay_s", c.replay_s)
                    .f64("act_err", c.act_err)
                    .f64("rbl_err", c.rbl_err)
                    .f64("energy_err", c.energy_err);
                o.finish()
            })
            .collect();
        let mut o = JsonObject::new();
        o.str("app", app)
            .f64("scale", scale)
            .u64("requests", trace.len() as u64)
            .f64("capture_s", capture_s)
            .f64("exec_sweep_s", exec_sweep_s)
            .f64("replay_sweep_s", replay_sweep_s)
            .f64("speedup_replay_only", speedup)
            .f64(
                "speedup_with_capture",
                exec_sweep_s / (replay_sweep_s + capture_s).max(1e-9),
            )
            .f64("max_envelope_err", max_err)
            .raw("cells", &array(&cell_json));
        json_rows.push(o.finish());
    }
    let out = std::env::var("LAZYDRAM_TRACE_BENCH_OUT")
        .unwrap_or_else(|_| "BENCH_PR6.json".to_string());
    std::fs::write(&out, array(&json_rows) + "\n")
        .unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    eprintln!("wrote {out}");
    match min_speedup {
        Some(cap) if best_speedup < cap => {
            eprintln!(
                "TRACE SPEEDUP REGRESSION: best replay-only sweep speedup {best_speedup:.1}x \
                 misses the {cap}x gate"
            );
            false
        }
        _ => true,
    }
}

/// Times the same run at `cores=1` vs `cores=4`, asserts identical
/// statistics, and writes wall clocks + profiler attribution (including the
/// pool's `sync`/`idle` phases) to `LAZYDRAM_CORES_BENCH_OUT`. Returns
/// `false` when an enabled gate fails: `LAZYDRAM_MAX_CORES_OVERHEAD` caps
/// how much slower cores=4 may be (the 1-CPU inline-path check), and
/// `LAZYDRAM_MIN_CORES_SPEEDUP` demands a real scaling win (multi-CPU
/// hosts only — tier1.sh sets it only when `nproc > 1`).
fn cores_smoke(scale: f64, reps: usize) -> bool {
    const CORES_APPS: &[&str] = &["SLA", "SCP"];
    const WIDE: usize = 4;
    let max_overhead = ratio_from_env("LAZYDRAM_MAX_CORES_OVERHEAD");
    let min_speedup = ratio_from_env("LAZYDRAM_MIN_CORES_SPEEDUP");
    let sched = SchedConfig::static_dms();
    let mut json_rows = Vec::new();
    let mut ok = true;
    eprintln!("\nintra-run parallelism smoke (phased tick, cores=1 vs cores={WIDE}):");
    for app in CORES_APPS {
        let spec = by_name(app).expect("known app");
        let timed = |cores: usize| {
            let run = SimBuilder::new(&spec)
                .sched(sched.clone(), "perf")
                .scale(scale)
                .cores(cores)
                .build();
            let mut best = f64::INFINITY;
            let mut stats = None;
            for _ in 0..reps.max(1) {
                let t0 = Instant::now();
                let r = run.run();
                best = best.min(t0.elapsed().as_secs_f64());
                stats = Some(r.stats);
            }
            (best, stats.expect("at least one rep"))
        };
        let (one_s, one_stats) = timed(1);
        let (wide_s, wide_stats) = timed(WIDE);
        assert!(
            one_stats == wide_stats,
            "{app}: cores=1 and cores={WIDE} stats diverge — parallel tick is not \
             result-invisible"
        );
        let overhead = wide_s / one_s.max(1e-9);
        eprintln!(
            "  {app}: cores=1 {one_s:.3}s vs cores={WIDE} {wide_s:.3}s \
             ({overhead:.2}x; identical stats)"
        );
        if let Some(cap) = max_overhead {
            if overhead > cap {
                eprintln!(
                    "  CORES OVERHEAD REGRESSION: {app} cores={WIDE} is {overhead:.2}x \
                     cores=1, over the {cap}x cap"
                );
                ok = false;
            }
        }
        if let Some(floor) = min_speedup {
            let speedup = one_s / wide_s.max(1e-9);
            if speedup < floor {
                eprintln!(
                    "  CORES SCALING REGRESSION: {app} cores={WIDE} is only {speedup:.2}x \
                     faster than cores=1, under the {floor}x floor"
                );
                ok = false;
            }
        }
        let mut o = JsonObject::new();
        o.str("app", app)
            .f64("scale", scale)
            .u64("cores_wide", WIDE as u64)
            .f64("cores1_s", one_s)
            .f64("cores_wide_s", wide_s)
            .f64("overhead_ratio", overhead)
            .u64("core_cycles", wide_stats.core_cycles);
        if !wide_stats.prof.is_empty() {
            o.raw("prof_cores1", &one_stats.prof.to_json())
                .raw("prof_cores_wide", &wide_stats.prof.to_json());
        }
        json_rows.push(o.finish());
    }
    let out = std::env::var("LAZYDRAM_CORES_BENCH_OUT")
        .unwrap_or_else(|_| "BENCH_PR7.json".to_string());
    std::fs::write(&out, array(&json_rows) + "\n")
        .unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    eprintln!("wrote {out}");
    ok
}

/// Runs the same fig04-style delay sweep cold (fresh store) and warm (fresh
/// runner, same store — pure disk-hit path), asserts warm results equal cold
/// ones, and writes wall clocks + store counters to
/// `LAZYDRAM_CACHE_BENCH_OUT`. Returns `false` when
/// `LAZYDRAM_MIN_CACHE_SPEEDUP` is set and the warm sweep misses it.
fn cache_smoke(scale: f64) -> bool {
    let delays = [64u32, 128, 256, 512, 1024, 2048];
    let min_speedup = ratio_from_env("LAZYDRAM_MIN_CACHE_SPEEDUP");
    let dir = std::env::temp_dir().join(format!("lazydram_cache_bench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = GpuConfig::default();
    let app = by_name("SCP").expect("known app");
    // Fresh runner per pass: the warm run starts with an empty in-memory hot
    // tier, so every hit exercises the decode-and-verify disk path — the one
    // a new process across sweeps would take.
    let sweep = || {
        let runner = SweepRunner::with_workers(1)
            .quiet()
            .with_cache(Some(CachePolicy::new(&dir, CacheMode::Auto)));
        let t0 = Instant::now();
        let bases = runner.baselines(std::slice::from_ref(&app), &cfg, scale);
        let base = bases[0].as_ref().expect("baseline runs").clone();
        let specs: Vec<MeasureSpec> = delays
            .iter()
            .map(|&x| {
                MeasureSpec::new(
                    SimBuilder::new(&app)
                        .gpu(cfg.clone())
                        .sched(
                            SchedConfig { dms: DmsMode::Static(x), ..SchedConfig::baseline() },
                            format!("DMS({x})"),
                        )
                        .scale(scale),
                    base.exact.clone(),
                )
            })
            .collect();
        let cells: Vec<Measurement> = runner
            .measure_all(specs)
            .into_iter()
            .map(|r| r.expect("cell runs"))
            .collect();
        let counters = runner.cache().expect("cache attached").stats();
        (t0.elapsed().as_secs_f64(), cells, counters)
    };
    let (cold_s, cold_cells, cold_stats) = sweep();
    let (warm_s, warm_cells, warm_stats) = sweep();
    let jobs = 1 + delays.len() as u64;
    assert_eq!(cold_stats.published, jobs, "cold sweep publishes every cell");
    assert_eq!(
        (warm_stats.hits(), warm_stats.misses),
        (jobs, 0),
        "warm sweep must be served entirely from the store"
    );
    for (c, w) in cold_cells.iter().zip(&warm_cells) {
        // `cached` is in-process provenance, and SimStats equality already
        // ignores the wall-clock profiler (absent from stored entries).
        let mut w = w.clone();
        w.cached = c.cached;
        assert!(
            w == *c,
            "{}/{}: warm measurement diverges from the cold run",
            c.app,
            c.scheme
        );
    }
    let speedup = cold_s / warm_s.max(1e-9);
    eprintln!("\nresult-cache smoke (fig04-style delay sweep, cold vs warm store):");
    eprintln!(
        "  SCP: cold {cold_s:.3}s vs warm {warm_s:.3}s ({speedup:.1}x; warm served \
         {hits}/{jobs} jobs from disk)",
        hits = warm_stats.hits(),
    );
    let mut o = JsonObject::new();
    o.str("app", "SCP")
        .f64("scale", scale)
        .u64("jobs", jobs)
        .f64("cold_s", cold_s)
        .f64("warm_s", warm_s)
        .f64("speedup", speedup)
        .u64("cold_published", cold_stats.published)
        .u64("warm_disk_hits", warm_stats.disk_hits)
        .u64("warm_misses", warm_stats.misses)
        .u64("bytes_written", cold_stats.bytes_written)
        .u64("bytes_read", warm_stats.bytes_read);
    let out = std::env::var("LAZYDRAM_CACHE_BENCH_OUT")
        .unwrap_or_else(|_| "BENCH_PR8.json".to_string());
    std::fs::write(&out, array(&[o.finish()]) + "\n")
        .unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    eprintln!("wrote {out}");
    let _ = std::fs::remove_dir_all(&dir);
    match min_speedup {
        Some(floor) if speedup < floor => {
            eprintln!(
                "CACHE SPEEDUP REGRESSION: warm sweep is only {speedup:.1}x faster than \
                 cold, under the {floor}x floor"
            );
            false
        }
        _ => true,
    }
}

/// Distils the main sweep into the PR 9 trajectory file: per-(app, scheme)
/// wall-clock ratio vs `pre_pr9.tsv`, the idle/compute skip split, and the
/// `sm_issue` phase delta against the pre-PR column when both profiles
/// exist. Records only; the regression gate runs on the main sweep.
fn pr9_smoke(rows: &[Row], scale: f64) {
    use lazydram_common::prof::Phase;
    let mut json_rows = Vec::new();
    eprintln!("\ncompute-skip smoke (analytic compute-burst fast-forward, PR 9 trajectory):");
    for r in rows {
        let sm_issue_s =
            (!r.prof.is_empty()).then(|| r.prof.get(Phase::SmIssue));
        let mut o = JsonObject::new();
        o.str("app", r.app)
            .str("scheme", r.scheme)
            .f64("scale", scale)
            .f64("fast_s", r.skip_s)
            .f64("skip_pct", r.skip_pct)
            .f64("compute_skip_pct", r.compute_skip_pct)
            .f64("idle_skip_pct", r.skip_pct - r.compute_skip_pct)
            .u64("core_cycles", r.core_cycles)
            .u64("cycles_skipped", r.cycles_skipped)
            .u64("compute_cycles_skipped", r.compute_cycles_skipped);
        if let Some(b) = r.pre_pr_s {
            o.f64("pre_pr_s", b).f64("speedup_vs_pre_pr", b / r.skip_s.max(1e-9));
        }
        if let Some(cur) = sm_issue_s {
            o.f64("sm_issue_s", cur);
            if let Some(pre) = r.pre_sm_issue_s {
                o.f64("pre_sm_issue_s", pre).f64("sm_issue_delta_s", pre - cur);
            }
        }
        eprintln!(
            "  {}/{}: {:.1}% skipped ({:.1}% compute bursts){}{}",
            r.app,
            r.scheme,
            r.skip_pct,
            r.compute_skip_pct,
            r.pre_pr_s
                .map_or_else(String::new, |b| format!(", {:.1}x vs pre-PR", b / r.skip_s.max(1e-9))),
            match (sm_issue_s, r.pre_sm_issue_s) {
                (Some(cur), Some(pre)) =>
                    format!(", sm_issue {pre:.3}s -> {cur:.3}s"),
                _ => String::new(),
            },
        );
        json_rows.push(o.finish());
    }
    let out =
        std::env::var("LAZYDRAM_PR9_BENCH_OUT").unwrap_or_else(|_| "BENCH_PR9.json".to_string());
    std::fs::write(&out, array(&json_rows) + "\n")
        .unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    eprintln!("wrote {out}");
}

/// Gates the memory-backend refactor (PR 10): the timed fast-forward rows
/// against `pre_pr10.tsv` — recorded at the revision immediately before the
/// [`MemoryBackend`] trait extraction — writing per-row ratios to
/// `LAZYDRAM_PR10_BENCH_OUT` (default `BENCH_PR10.json`). The trait is
/// dispatched through a static enum, so the default GDDR5 hot path is
/// supposed to stay monomorphic and the cap is tight:
/// `LAZYDRAM_MAX_PR10_REGRESSION` (default 1.15x). Returns `false` on a
/// breach; skips silently (returns `true`) when the baseline file is
/// absent.
///
/// [`MemoryBackend`]: lazydram_dram::MemoryBackend
fn pr10_smoke(rows: &[Row], scale: f64) -> bool {
    let Some(baseline) = load_baseline_file("LAZYDRAM_PR10_BASELINE", "pre_pr10.tsv") else {
        eprintln!("backend smoke: no pre_pr10.tsv baseline; skipping the PR 10 gate");
        return true;
    };
    let cap = ratio_from_env("LAZYDRAM_MAX_PR10_REGRESSION").unwrap_or(1.15);
    let mut json_rows = Vec::new();
    let mut regressed = Vec::new();
    eprintln!("
backend smoke (MemoryBackend trait dispatch, PR 10 trajectory):");
    for r in rows {
        let Some(pre) = baseline.iter().find(|b| b.app == r.app && b.scheme == r.scheme) else {
            continue;
        };
        let ratio = r.skip_s / pre.secs.max(1e-9);
        let mut o = JsonObject::new();
        o.str("app", r.app)
            .str("scheme", r.scheme)
            .f64("scale", scale)
            .f64("fast_s", r.skip_s)
            .f64("pre_pr10_s", pre.secs)
            .f64("ratio_vs_pre_pr10", ratio);
        json_rows.push(o.finish());
        eprintln!("  {}/{}: {:.3}s vs pre-PR10 {:.3}s ({ratio:.2}x)", r.app, r.scheme, r.skip_s, pre.secs);
        if ratio > cap {
            regressed.push(format!(
                "{}/{}: {:.3}s vs pre-PR10 {:.3}s ({ratio:.2}x > {cap}x cap)",
                r.app, r.scheme, r.skip_s, pre.secs
            ));
        }
    }
    let out = std::env::var("LAZYDRAM_PR10_BENCH_OUT")
        .unwrap_or_else(|_| "BENCH_PR10.json".to_string());
    std::fs::write(&out, array(&json_rows) + "
")
        .unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    eprintln!("wrote {out}");
    if regressed.is_empty() {
        eprintln!("backend perf gate passed (no row slower than {cap}x pre-PR10)");
        return true;
    }
    eprintln!("BACKEND PERF REGRESSION (cap {cap}x vs pre_pr10.tsv):");
    for line in &regressed {
        eprintln!("  {line}");
    }
    false
}

/// Parses a positive-ratio environment variable, panicking on malformed
/// values (a silently ignored gate is worse than none).
fn ratio_from_env(name: &str) -> Option<f64> {
    let s = std::env::var(name).ok()?;
    let v: f64 = s
        .trim()
        .parse()
        .unwrap_or_else(|e| panic!("{name}={s:?} is not a ratio: {e}"));
    assert!(v > 0.0, "{name} must be positive, got {v}");
    Some(v)
}

fn main() {
    let scale = scale_from_env();
    let reps: usize = std::env::var("LAZYDRAM_BENCH_REPS")
        .ok()
        .map(|s| {
            s.trim()
                .parse()
                .unwrap_or_else(|e| panic!("LAZYDRAM_BENCH_REPS={s:?} is not a count: {e}"))
        })
        .unwrap_or(3);
    let max_regression = ratio_from_env("LAZYDRAM_MAX_REGRESSION");
    let baseline = load_baseline();
    let schemes: [(&str, SchedConfig); 2] = [
        ("baseline", SchedConfig::baseline()),
        ("Static-DMS", SchedConfig::static_dms()),
    ];
    let mut rows = Vec::new();
    for (scheme_label, sched) in &schemes {
        for app in APPS {
            let (noskip_s, _) = timed_run(app, sched, scale, false, reps);
            let (skip_s, stats) = timed_run(app, sched, scale, true, reps);
            let pre = baseline
                .as_ref()
                .and_then(|b| b.iter().find(|r| r.app == *app && r.scheme == *scheme_label));
            let pre_pr_s = pre.map(|r| r.secs);
            eprintln!(
                "{app}/{scheme_label}: naive {noskip_s:.3}s, fast-forward {skip_s:.3}s \
                 ({speedup:.1}x, skipped {pct:.1}% of cycles, {cpct:.1}% as compute bursts{vs})",
                speedup = noskip_s / skip_s.max(1e-9),
                pct = 100.0 * stats.skip_fraction(),
                cpct = 100.0 * stats.compute_skip_fraction(),
                vs = match pre_pr_s {
                    Some(b) => format!(", {:.1}x vs pre-PR", b / skip_s.max(1e-9)),
                    None => String::new(),
                },
            );
            rows.push(Row {
                app,
                scheme: scheme_label,
                skip_s,
                noskip_s,
                pre_pr_s,
                pre_sm_issue_s: pre.and_then(|r| r.sm_issue_s),
                skip_pct: 100.0 * stats.skip_fraction(),
                compute_skip_pct: 100.0 * stats.compute_skip_fraction(),
                core_cycles: stats.core_cycles,
                cycles_skipped: stats.cycles_skipped,
                compute_cycles_skipped: stats.compute_cycles_skipped,
                prof: stats.prof.clone(),
            });
        }
    }

    println!();
    println!(
        "{:<14} {:<11} {:>9} {:>9} {:>9} {:>8} {:>8} {:>8}",
        "app", "scheme", "pre_pr_s", "naive_s", "fast_s", "speedup", "skip%", "cskip%"
    );
    for r in &rows {
        println!(
            "{:<14} {:<11} {:>9} {:>9.3} {:>9.3} {:>7.1}x {:>7.1}% {:>7.1}%",
            r.app,
            r.scheme,
            r.pre_pr_s.map_or_else(|| "-".into(), |b| format!("{b:.3}")),
            r.noskip_s,
            r.skip_s,
            r.pre_pr_s.unwrap_or(r.noskip_s) / r.skip_s.max(1e-9),
            r.skip_pct,
            r.compute_skip_pct,
        );
    }
    let ratios: Vec<(usize, f64)> = rows
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.pre_pr_s.map(|b| (i, b / r.skip_s.max(1e-9))))
        .collect();
    let geomean = if ratios.is_empty() {
        None
    } else {
        let log_sum: f64 = ratios.iter().map(|&(_, s)| s.ln()).sum();
        Some((log_sum / ratios.len() as f64).exp())
    };
    if let Some(g) = geomean {
        let worst = ratios.iter().map(|&(_, s)| s).fold(f64::INFINITY, f64::min);
        println!("\ngeomean speedup vs pre-PR: {g:.2}x (worst any-app: {worst:.2}x)");
    }
    if !rows.is_empty() && !rows[0].prof.is_empty() {
        println!("\nphase breakdown (exclusive seconds, summed over apps, fast-forward runs):");
        let mut total = lazydram_common::ProfReport::default();
        for r in &rows {
            total.merge(&r.prof);
        }
        for p in lazydram_common::prof::Phase::ALL {
            println!("  {:<13} {:>8.3}s", p.name(), total.get(p));
        }
    }

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            let mut o = JsonObject::new();
            o.str("app", r.app)
                .str("scheme", r.scheme)
                .f64("scale", scale)
                .f64("noskip_s", r.noskip_s)
                .f64("skip_s", r.skip_s)
                .f64("speedup_vs_naive", r.noskip_s / r.skip_s.max(1e-9))
                .f64("skip_pct", r.skip_pct)
                .f64("compute_skip_pct", r.compute_skip_pct)
                .u64("core_cycles", r.core_cycles)
                .u64("cycles_skipped", r.cycles_skipped)
                .u64("compute_cycles_skipped", r.compute_cycles_skipped);
            if let Some(b) = r.pre_pr_s {
                o.f64("pre_pr_s", b)
                    .f64("speedup_vs_pre_pr", b / r.skip_s.max(1e-9));
            }
            if !r.prof.is_empty() {
                o.raw("prof", &r.prof.to_json());
            }
            o.finish()
        })
        .collect();
    let out = std::env::var("LAZYDRAM_BENCH_OUT").unwrap_or_else(|_| "BENCH_PR4.json".to_string());
    std::fs::write(&out, array(&json_rows) + "\n")
        .unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    eprintln!("wrote {out}");

    pr9_smoke(&rows, scale);
    let pr10_ok = pr10_smoke(&rows, scale);

    let trace_ok = trace_smoke(scale);
    let cores_ok = cores_smoke(scale, reps);
    let cache_ok = cache_smoke(scale);

    if let Some(cap) = max_regression {
        let regressed: Vec<String> = ratios
            .iter()
            .filter(|&&(_, speedup)| speedup < 1.0 / cap)
            .map(|&(i, speedup)| {
                format!(
                    "{}/{}: {:.3}s vs pre-PR {:.3}s ({:.2}x slower)",
                    rows[i].app,
                    rows[i].scheme,
                    rows[i].skip_s,
                    rows[i].pre_pr_s.expect("ratio implies baseline"),
                    1.0 / speedup,
                )
            })
            .collect();
        if !regressed.is_empty() {
            eprintln!("\nPERF REGRESSION (cap {cap}x vs pre-PR baseline):");
            for line in &regressed {
                eprintln!("  {line}");
            }
            std::process::exit(1);
        }
        eprintln!("perf gate passed (no app slower than {cap}x pre-PR)");
    }
    if !trace_ok || !cores_ok || !cache_ok || !pr10_ok {
        std::process::exit(1);
    }
}
