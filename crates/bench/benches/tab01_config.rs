//! Table I: the simulated-GPU configuration in force for every experiment.

use lazydram_common::GpuConfig;

fn main() {
    let g = GpuConfig::default();
    println!("=== Table I: key configuration parameters of the simulated GPU ===");
    println!("SMs                  : {} @ {} MHz, SIMD width {}, {} warps/SM, issue {}",
             g.num_sms, g.core_clock_mhz, g.threads_per_warp, g.warps_per_sm, g.issue_width);
    println!("L1 data cache        : {} KB, {}-way, {} B lines, {} MSHRs",
             g.l1_bytes / 1024, g.l1_ways, g.line_bytes, g.l1_mshrs);
    println!("L2 cache             : {} KB/channel ({} KB total), {}-way, {} MSHRs",
             g.l2_bytes / 1024, g.l2_bytes * g.num_channels / 1024, g.l2_ways, g.l2_mshrs);
    println!("Memory model         : {} GDDR5 MCs @ {} MHz, FR-FCFS, {} banks/MC in {} groups,",
             g.num_channels, g.mem_clock_mhz, g.banks_per_channel, g.bank_groups);
    println!("                       {} B rows, {}-entry pending queues, {} B interleave chunks",
             g.row_bytes, g.pending_queue_size, g.chunk_bytes);
    let t = g.timings;
    println!("GDDR5 timing         : tCL={} tRP={} tRC={} tRAS={} tCCD={} tRCD={} tRRD={} tCDLR={}",
             t.t_cl, t.t_rp, t.t_rc, t.t_ras, t.t_ccd, t.t_rcd, t.t_rrd, t.t_cdlr);
    println!("Interconnect         : crossbar, latency {} core cycles, width {}/cycle",
             g.noc_latency, g.noc_width);
}
