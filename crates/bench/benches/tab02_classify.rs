//! Tables II-III: measured feature classification of every application —
//! thrashing level, delay tolerance (MTD), activation sensitivity, Th_RBL
//! sensitivity, and error tolerance, with the paper's thresholds.

use lazydram_bench::{measure, measure_baseline, print_table, scale_from_env, apps_from_env};
use lazydram_common::{AmsMode, DmsMode, GpuConfig, SchedConfig};

fn class(x: f64, lo: f64, hi: f64) -> &'static str {
    if x < lo {
        "Low"
    } else if x < hi {
        "Medium"
    } else {
        "High"
    }
}

fn main() {
    let scale = scale_from_env();
    let cfg = GpuConfig::default();
    let mut rows = Vec::new();
    for app in apps_from_env() {
        let (base, exact) = measure_baseline(&app, &cfg, scale);

        // Thrashing level: % of requests in rows with RBL(1-8).
        let h = &base.stats.dram.rbl;
        let req18: u64 = (1..=8).map(|k| k as u64 * h.count(k)).sum();
        let thrash = 100.0 * req18 as f64 / h.requests().max(1) as f64;

        // Delay tolerance: MTD = largest tested delay with ≤ 5 % IPC loss.
        let mut mtd = 0u32;
        for d in [128u32, 256, 512, 1024, 2048] {
            let sched = SchedConfig { dms: DmsMode::Static(d), ..SchedConfig::baseline() };
            let m = measure(&app, &cfg, &sched, scale, "mtd", &exact);
            if m.ipc >= 0.95 * base.ipc {
                mtd = d;
            } else {
                break;
            }
        }
        // Activation sensitivity: reduction at DMS(2048).
        let m2048 = measure(
            &app,
            &cfg,
            &SchedConfig { dms: DmsMode::Static(2048), ..SchedConfig::baseline() },
            scale,
            "d2048",
            &exact,
        );
        let act_sens =
            100.0 * (1.0 - m2048.activations as f64 / base.activations.max(1) as f64);

        // Th_RBL sensitivity: extra reduction of the best Th vs AMS(8).
        let mut best_acts = u64::MAX;
        let mut acts8 = u64::MAX;
        for th in [8u32, 4, 2, 1] {
            let sched = SchedConfig { ams: AmsMode::Static(th), ..SchedConfig::baseline() };
            let m = measure(&app, &cfg, &sched, scale, "th", &exact);
            if th == 8 {
                acts8 = m.activations;
            }
            best_acts = best_acts.min(m.activations);
        }
        let th_sens = 100.0 * (acts8.saturating_sub(best_acts)) as f64
            / base.activations.max(1) as f64;

        // Error tolerance: error at 10 % coverage (Static-AMS).
        let mams = measure(&app, &cfg, &SchedConfig::static_ams(), scale, "ams", &exact);
        let err = 100.0 * mams.app_error;
        let err_class = if err >= 20.0 {
            "Low"
        } else if err >= 5.0 {
            "Medium"
        } else {
            "High"
        };

        rows.push(vec![
            app.name.to_string(),
            format!("g{}", app.group),
            format!("{thrash:.0}% {}", class(thrash, 3.0, 10.0)),
            format!("{mtd} {}", class(f64::from(mtd), 256.0, 1024.0)),
            format!("{act_sens:.0}% {}", class(act_sens, 10.0, 20.0)),
            format!("{th_sens:.0}% {}", if th_sens < 5.0 { "Low" } else { "High" }),
            format!("{err:.0}% {err_class} (cov {:.0}%)", 100.0 * mams.coverage),
        ]);
    }
    print_table(
        "Tables II-III: measured application features (value + class, paper thresholds)",
        &["app", "grp", "thrashing", "MTD/delay-tol", "act-sens", "ThRBL-sens", "err-tol@10%"],
        &rows,
    );
}
