//! Tables II-III: measured feature classification of every application —
//! thrashing level, delay tolerance (MTD), activation sensitivity, Th_RBL
//! sensitivity, and error tolerance, with the paper's thresholds.

use lazydram_bench::{apps_from_env, gpu_config_from_env, JobResult, Measurement, MeasureSpec, print_table, scale_from_env, Scheme, SimBuilder, SweepRunner};
use lazydram_common::{AmsMode, DmsMode, SchedConfig};

const DELAYS: [u32; 5] = [128, 256, 512, 1024, 2048];
const THRESHOLDS: [u32; 4] = [8, 4, 2, 1];

fn class(x: f64, lo: f64, hi: f64) -> &'static str {
    if x < lo {
        "Low"
    } else if x < hi {
        "Medium"
    } else {
        "High"
    }
}

/// Builds one app's row from its baseline and its 10 sweep results
/// (5 delays, 4 thresholds, Static-AMS). Returns `None` if any run the
/// classification depends on failed.
fn classify(
    app_cell: String,
    group: u8,
    base: &Measurement,
    sweep: &[&JobResult<Measurement>],
) -> Option<Vec<String>> {
    let (delay_runs, rest) = sweep.split_at(DELAYS.len());
    let (th_runs, ams_run) = rest.split_at(THRESHOLDS.len());

    // Thrashing level: % of requests in rows with RBL(1-8).
    let h = &base.stats.dram.rbl;
    let req18: u64 = (1..=8).map(|k| k as u64 * h.count(k)).sum();
    let thrash = 100.0 * req18 as f64 / h.requests().max(1) as f64;

    // Delay tolerance: MTD = largest tested delay with ≤ 5 % IPC loss,
    // scanning upward and stopping at the first loss (as the paper does).
    let mut mtd = 0u32;
    for (&d, r) in DELAYS.iter().zip(delay_runs) {
        let m = r.as_ref().ok()?;
        if m.ipc >= 0.95 * base.ipc {
            mtd = d;
        } else {
            break;
        }
    }
    // Activation sensitivity: reduction at DMS(2048) (last delay run).
    let m2048 = delay_runs[DELAYS.len() - 1].as_ref().ok()?;
    let act_sens = 100.0 * (1.0 - m2048.activations as f64 / base.activations.max(1) as f64);

    // Th_RBL sensitivity: extra reduction of the best Th vs AMS(8).
    let mut best_acts = u64::MAX;
    let mut acts8 = u64::MAX;
    for (&th, r) in THRESHOLDS.iter().zip(th_runs) {
        let m = r.as_ref().ok()?;
        if th == 8 {
            acts8 = m.activations;
        }
        best_acts = best_acts.min(m.activations);
    }
    let th_sens =
        100.0 * (acts8.saturating_sub(best_acts)) as f64 / base.activations.max(1) as f64;

    // Error tolerance: error at 10 % coverage (Static-AMS).
    let mams = ams_run[0].as_ref().ok()?;
    let err = 100.0 * mams.app_error;
    let err_class = if err >= 20.0 {
        "Low"
    } else if err >= 5.0 {
        "Medium"
    } else {
        "High"
    };

    Some(vec![
        app_cell,
        format!("g{group}"),
        format!("{thrash:.0}% {}", class(thrash, 3.0, 10.0)),
        format!("{mtd} {}", class(f64::from(mtd), 256.0, 1024.0)),
        format!("{act_sens:.0}% {}", class(act_sens, 10.0, 20.0)),
        format!("{th_sens:.0}% {}", if th_sens < 5.0 { "Low" } else { "High" }),
        format!("{err:.0}% {err_class} (cov {:.0}%)", 100.0 * mams.coverage),
    ])
}

fn main() {
    let scale = scale_from_env();
    let cfg = gpu_config_from_env();
    let apps = apps_from_env();
    let runner = SweepRunner::from_env();
    let bases = runner.baselines(&apps, &cfg, scale);
    let mut specs = Vec::new();
    for (app, base) in apps.iter().zip(&bases) {
        let Ok(base) = base else { continue };
        for &d in &DELAYS {
            specs.push(MeasureSpec::new(
                SimBuilder::new(app)
                    .gpu(cfg.clone())
                    .sched(
                        SchedConfig { dms: DmsMode::Static(d), ..SchedConfig::baseline() },
                        format!("DMS({d})"),
                    )
                    .scale(scale),
                base.exact.clone(),
            ));
        }
        for &th in &THRESHOLDS {
            specs.push(MeasureSpec::new(
                SimBuilder::new(app)
                    .gpu(cfg.clone())
                    .sched(
                        SchedConfig { ams: AmsMode::Static(th), ..SchedConfig::baseline() },
                        format!("AMS({th})"),
                    )
                    .scale(scale),
                base.exact.clone(),
            ));
        }
        specs.push(MeasureSpec::new(
            SimBuilder::new(app).gpu(cfg.clone()).scheme(Scheme::StaticAms).scale(scale),
            base.exact.clone(),
        ));
    }
    let results = runner.measure_all(specs);

    let per_app = DELAYS.len() + THRESHOLDS.len() + 1;
    let mut rows = Vec::new();
    let mut cursor = results.iter();
    for (app, base) in apps.iter().zip(&bases) {
        let cell = app.name.to_string();
        match base {
            Ok(base) => {
                let sweep: Vec<_> = cursor.by_ref().take(per_app).collect();
                rows.push(
                    classify(cell.clone(), app.group, &base.measurement, &sweep)
                        .unwrap_or_else(|| {
                            let mut r = vec![cell, format!("g{}", app.group)];
                            r.extend(std::iter::repeat_n("FAIL".to_string(), 5));
                            r
                        }),
                );
            }
            Err(_) => {
                let mut r = vec![cell, format!("g{}", app.group)];
                r.extend(std::iter::repeat_n("FAIL".to_string(), 5));
                rows.push(r);
            }
        }
    }
    print_table(
        "Tables II-III: measured application features (value + class, paper thresholds)",
        &["app", "grp", "thrashing", "MTD/delay-tol", "act-sens", "ThRBL-sens", "err-tol@10%"],
        &rows,
    );
}
