//! Ablation (paper footnote 1): the 4096-cycle profiling window of the
//! dynamic schemes vs smaller and larger windows.

use lazydram_bench::{measure, measure_baseline, print_table, scale_from_env};
use lazydram_common::config::{DynAmsConfig, DynDmsConfig};
use lazydram_common::{AmsMode, DmsMode, GpuConfig, SchedConfig};
use lazydram_workloads::by_name;

fn main() {
    let scale = scale_from_env();
    let cfg = GpuConfig::default();
    let mut rows = Vec::new();
    for name in ["SCP", "MVT", "3DCONV"] {
        let app = by_name(name).expect("app");
        let (base, exact) = measure_baseline(&app, &cfg, scale);
        for window in [1024u32, 4096, 16384] {
            let sched = SchedConfig {
                dms: DmsMode::Dynamic(DynDmsConfig { window, ..DynDmsConfig::default() }),
                ams: AmsMode::Dynamic(DynAmsConfig { window, ..DynAmsConfig::default() }),
                ..SchedConfig::baseline()
            };
            let m = measure(&app, &cfg, &sched, scale, "win", &exact);
            rows.push(vec![
                name.to_string(),
                window.to_string(),
                format!("{:.3}", m.activations as f64 / base.activations.max(1) as f64),
                format!("{:.3}", m.ipc / base.ipc.max(1e-9)),
                format!("{:.1}%", 100.0 * m.coverage),
            ]);
        }
    }
    print_table(
        "Ablation: Dyn-DMS+Dyn-AMS profiling-window size (paper: 4096)",
        &["app", "window", "norm acts", "norm IPC", "coverage"],
        &rows,
    );
}
