//! Ablation (paper footnote 1): the 4096-cycle profiling window of the
//! dynamic schemes vs smaller and larger windows.

use lazydram_bench::{gpu_config_from_env, MeasureSpec, print_table, scale_from_env, SimBuilder, SweepRunner};
use lazydram_common::config::{DynAmsConfig, DynDmsConfig};
use lazydram_common::{AmsMode, DmsMode, SchedConfig};
use lazydram_workloads::by_name;

fn main() {
    let scale = scale_from_env();
    let cfg = gpu_config_from_env();
    let windows = [1024u32, 4096, 16384];
    let apps: Vec<_> = ["SCP", "MVT", "3DCONV"]
        .iter()
        .map(|n| by_name(n).expect("app"))
        .collect();
    let runner = SweepRunner::from_env();
    let bases = runner.baselines(&apps, &cfg, scale);
    let mut specs = Vec::new();
    for (app, base) in apps.iter().zip(&bases) {
        let Ok(base) = base else { continue };
        for &window in &windows {
            let sched = SchedConfig {
                dms: DmsMode::Dynamic(DynDmsConfig { window, ..DynDmsConfig::default() }),
                ams: AmsMode::Dynamic(DynAmsConfig { window, ..DynAmsConfig::default() }),
                ..SchedConfig::baseline()
            };
            specs.push(MeasureSpec::new(
                SimBuilder::new(app)
                    .gpu(cfg.clone())
                    .sched(sched, format!("window={window}"))
                    .scale(scale),
                base.exact.clone(),
            ));
        }
    }
    let results = runner.measure_all(specs);

    let mut rows = Vec::new();
    let mut cursor = results.iter();
    for (app, base) in apps.iter().zip(&bases) {
        let Ok(base) = base else {
            rows.push(vec![
                app.name.to_string(),
                "-".to_string(),
                "FAIL".to_string(),
                "FAIL".to_string(),
                "FAIL".to_string(),
            ]);
            continue;
        };
        for (&window, r) in windows.iter().zip(cursor.by_ref().take(windows.len())) {
            rows.push(match r {
                Ok(m) => vec![
                    app.name.to_string(),
                    window.to_string(),
                    format!("{:.3}",
                        m.activations as f64 / base.measurement.activations.max(1) as f64),
                    format!("{:.3}", m.ipc / base.measurement.ipc.max(1e-9)),
                    format!("{:.1}%", 100.0 * m.coverage),
                ],
                Err(_) => vec![
                    app.name.to_string(),
                    window.to_string(),
                    "FAIL".to_string(),
                    "FAIL".to_string(),
                    "FAIL".to_string(),
                ],
            });
        }
    }
    print_table(
        "Ablation: Dyn-DMS+Dyn-AMS profiling-window size (paper: 4096)",
        &["app", "window", "norm acts", "norm IPC", "coverage"],
        &rows,
    );
}
