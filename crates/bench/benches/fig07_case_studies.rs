//! Figure 7: how AMS helps DMS — LPS (delay-insensitive activations) and
//! SCP (performance-limited delay) case studies.

use lazydram_bench::{gpu_config_from_env, MeasureSpec, print_table, scale_from_env, SimBuilder, SweepRunner};
use lazydram_common::{AmsMode, DmsMode, SchedConfig};
use lazydram_workloads::by_name;

type Case = (&'static str, DmsMode, AmsMode);

fn main() {
    let scale = scale_from_env();
    let cfg = gpu_config_from_env();
    let runner = SweepRunner::from_env();
    let studies: Vec<(&str, Vec<Case>)> = vec![
        (
            "LPS",
            vec![
                ("DMS(256)", DmsMode::Static(256), AmsMode::Off),
                ("DMS(512)", DmsMode::Static(512), AmsMode::Off),
                ("AMS(8)", DmsMode::Off, AmsMode::Static(8)),
            ],
        ),
        (
            "SCP",
            vec![
                ("DMS(128)", DmsMode::Static(128), AmsMode::Off),
                ("DMS(256)", DmsMode::Static(256), AmsMode::Off),
                ("AMS(8)", DmsMode::Off, AmsMode::Static(8)),
                ("DMS(256)+AMS(8)", DmsMode::Static(256), AmsMode::Static(8)),
            ],
        ),
    ];
    let apps: Vec<_> = studies.iter().map(|(n, _)| by_name(n).expect("app")).collect();
    let bases = runner.baselines(&apps, &cfg, scale);
    let mut specs = Vec::new();
    for ((app, base), (_, cases)) in apps.iter().zip(&bases).zip(&studies) {
        let Ok(base) = base else { continue };
        for (label, dms, ams) in cases {
            specs.push(MeasureSpec::new(
                SimBuilder::new(app)
                    .gpu(cfg.clone())
                    .sched(SchedConfig { dms: *dms, ams: *ams, ..SchedConfig::baseline() }, *label)
                    .scale(scale),
                base.exact.clone(),
            ));
        }
    }
    let results = runner.measure_all(specs);

    let mut cursor = results.iter();
    for ((app, base), (_, cases)) in apps.iter().zip(&bases).zip(&studies) {
        let mut rows = Vec::new();
        match base {
            Ok(base) => {
                for ((label, _, _), r) in cases.iter().zip(cursor.by_ref().take(cases.len())) {
                    rows.push(match r {
                        Ok(m) => vec![
                            (*label).to_string(),
                            format!("{:.3}",
                                m.activations as f64 / base.measurement.activations.max(1) as f64),
                            format!("{:.3}", m.ipc / base.measurement.ipc.max(1e-9)),
                            format!("{:.1}%", 100.0 * m.coverage),
                            format!("{:.1}%", 100.0 * m.app_error),
                        ],
                        Err(_) => vec![(*label).to_string(); 1]
                            .into_iter()
                            .chain(std::iter::repeat_n("FAIL".to_string(), 4))
                            .collect(),
                    });
                }
            }
            Err(f) => rows.push(vec![
                "baseline".to_string(),
                format!("FAILED: {}", f.message),
                String::new(),
                String::new(),
                String::new(),
            ]),
        }
        print_table(
            &format!("Figure 7 ({}): AMS helps DMS", app.name),
            &["scheme", "norm acts", "norm IPC", "coverage", "app error"],
            &rows,
        );
    }
}
