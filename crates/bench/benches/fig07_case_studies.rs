//! Figure 7: how AMS helps DMS — LPS (delay-insensitive activations) and
//! SCP (performance-limited delay) case studies.

use lazydram_bench::{measure, measure_baseline, print_table, scale_from_env};
use lazydram_common::{AmsMode, DmsMode, GpuConfig, SchedConfig};
use lazydram_workloads::by_name;

fn main() {
    let scale = scale_from_env();
    let cfg = GpuConfig::default();
    for (name, cases) in [
        (
            "LPS",
            vec![
                ("DMS(256)", DmsMode::Static(256), AmsMode::Off),
                ("DMS(512)", DmsMode::Static(512), AmsMode::Off),
                ("AMS(8)", DmsMode::Off, AmsMode::Static(8)),
            ],
        ),
        (
            "SCP",
            vec![
                ("DMS(128)", DmsMode::Static(128), AmsMode::Off),
                ("DMS(256)", DmsMode::Static(256), AmsMode::Off),
                ("AMS(8)", DmsMode::Off, AmsMode::Static(8)),
                ("DMS(256)+AMS(8)", DmsMode::Static(256), AmsMode::Static(8)),
            ],
        ),
    ] {
        let app = by_name(name).expect("app");
        let (base, exact) = measure_baseline(&app, &cfg, scale);
        let mut rows = Vec::new();
        for (label, dms, ams) in cases {
            let sched = SchedConfig { dms, ams, ..SchedConfig::baseline() };
            let m = measure(&app, &cfg, &sched, scale, label, &exact);
            rows.push(vec![
                label.to_string(),
                format!("{:.3}", m.activations as f64 / base.activations.max(1) as f64),
                format!("{:.3}", m.ipc / base.ipc.max(1e-9)),
                format!("{:.1}%", 100.0 * m.coverage),
                format!("{:.1}%", 100.0 * m.app_error),
            ]);
        }
        print_table(
            &format!("Figure 7 ({name}): AMS helps DMS"),
            &["scheme", "norm acts", "norm IPC", "coverage", "app error"],
            &rows,
        );
    }
}
