//! Figure 14: visual output-quality comparison for `laplacian` — writes the
//! exact and the approximated (Dyn-DMS + Dyn-AMS) output images as PGM
//! files and reports the application error.

use lazydram_bench::{gpu_config_from_env, Job, scale_from_env, Scheme, SimBuilder, SweepRunner};
use lazydram_gpu::application_error;
use lazydram_workloads::{by_name, exact_output};

fn write_pgm(path: &str, pixels: &[f32], w: usize) -> std::io::Result<()> {
    use std::io::Write;
    let h = pixels.len() / w;
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "P5\n{w} {h}\n255")?;
    let bytes: Vec<u8> = pixels
        .iter()
        .map(|&v| (v.clamp(0.0, 1.0) * 255.0) as u8)
        .collect();
    f.write_all(&bytes)
}

fn main() {
    let scale = scale_from_env();
    let cfg = gpu_config_from_env();
    let app = by_name("laplacian").expect("app");
    let runner = SweepRunner::from_env();
    // The exact (functional) output and the approximated run are independent —
    // compute both in parallel, each isolated against panics.
    let exact_job = {
        let app = app.clone();
        Job::new("laplacian/exact", move || {
            (exact_output(&app, scale), 0.0f64)
        })
    };
    let lazy_job = {
        let app = app.clone();
        let cfg = cfg.clone();
        Job::new("laplacian/Dyn-DMS+Dyn-AMS", move || {
            let r = SimBuilder::new(&app).gpu(cfg).scheme(Scheme::DynCombo).scale(scale).build().run();
            let coverage = r.stats.dram.coverage();
            (r.output, coverage)
        })
    };
    let mut results = runner.run(vec![exact_job, lazy_job]);
    let lazy = results.pop().expect("lazy job");
    let exact = results.pop().expect("exact job");
    let ((exact, _), (lazy_out, coverage)) = match (exact, lazy) {
        (Ok(e), Ok(l)) => (e, l),
        (Err(f), _) | (_, Err(f)) => {
            println!("Figure 14 (laplacian): FAILED — {}", f.message);
            return;
        }
    };
    let err = application_error(&exact, &lazy_out);
    // The image is square at any scale (w == h in the builder).
    let w = (exact.len() as f64).sqrt().round() as usize;
    let dir = std::env::var("LAZYDRAM_OUT").unwrap_or_else(|_| "target".into());
    std::fs::create_dir_all(&dir).expect("create LAZYDRAM_OUT dir");
    let exact_path = format!("{dir}/fig14_laplacian_exact.pgm");
    let approx_path = format!("{dir}/fig14_laplacian_approx.pgm");
    write_pgm(&exact_path, &exact, w).expect("write exact image");
    write_pgm(&approx_path, &lazy_out, w).expect("write approx image");
    println!("=== Figure 14 (laplacian): output quality under Dyn-DMS+Dyn-AMS ===");
    println!("application error: {:.1}%  coverage: {:.1}%", 100.0 * err, 100.0 * coverage);
    println!("images written: {exact_path} (exact), {approx_path} (approximated)");
}
