//! Criterion micro-benchmarks for the hot data structures: pending-queue
//! operations, FR-FCFS candidate selection, DRAM channel commands, cache
//! lookups, and the address map.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lazydram_common::{AccessKind, AddressMap, GpuConfig, MemSpace, Request, RequestId, SchedConfig};
use lazydram_core::{MemoryController, PendingQueue};
use lazydram_dram::Channel;
use lazydram_gpu::Cache;

fn mkreq(map: &AddressMap, id: u64) -> Request {
    let addr = map.line_of(id.wrapping_mul(0x9E37_79B9) % (1 << 30));
    Request {
        id: RequestId(id),
        addr,
        loc: map.decompose(addr),
        kind: AccessKind::Read,
        space: MemSpace::Global,
        approximable: true,
        arrival: 0,
    }
}

fn bench_queue(c: &mut Criterion) {
    let cfg = GpuConfig::default();
    let map = AddressMap::new(&cfg);
    c.bench_function("queue_push_remove_128", |b| {
        b.iter(|| {
            let mut q = PendingQueue::new(128, 16, 4);
            for i in 0..128u64 {
                q.push(mkreq(&map, i)).unwrap();
            }
            for i in 0..128u64 {
                black_box(q.remove(RequestId(i)));
            }
        })
    });
    c.bench_function("queue_visible_rbl", |b| {
        let mut q = PendingQueue::new(128, 16, 4);
        for i in 0..128u64 {
            q.push(mkreq(&map, i)).unwrap();
        }
        b.iter(|| black_box(q.visible_rbl(3, 7)))
    });
}

fn bench_controller_tick(c: &mut Criterion) {
    let cfg = GpuConfig::default();
    let map = AddressMap::new(&cfg);
    c.bench_function("controller_tick_loaded", |b| {
        let mut mc = MemoryController::new(&cfg, &SchedConfig::baseline());
        let mut next = 0u64;
        for _ in 0..96 {
            next += 1;
            let _ = mc.enqueue(mkreq(&map, next));
        }
        b.iter(|| {
            if mc.pending_len() < 64 {
                for _ in 0..32 {
                    next += 1;
                    let _ = mc.enqueue(mkreq(&map, next));
                }
            }
            black_box(mc.tick())
        })
    });
}

fn bench_channel(c: &mut Criterion) {
    let cfg = GpuConfig::default();
    c.bench_function("channel_act_cas_pre", |b| {
        b.iter(|| {
            let mut ch = Channel::new(&cfg);
            let mut t = 0u64;
            for row in 0..8u32 {
                while !ch.can_activate(0, t) {
                    t += 1;
                }
                ch.activate(0, row, t);
                while !ch.can_cas(0, AccessKind::Read, t) {
                    t += 1;
                }
                ch.cas(0, AccessKind::Read, true, t);
                while !ch.can_precharge(0, t) {
                    t += 1;
                }
                ch.precharge(0, t);
            }
            black_box(ch.stats().activations)
        })
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("l2_access_fill", |b| {
        let mut l2 = Cache::new(128 * 1024, 8, 128);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x9E37).wrapping_mul(31) % (1 << 24);
            let a = i * 128;
            if l2.access(a, false) == lazydram_gpu::AccessResult::Miss {
                l2.fill(a, false);
            }
        })
    });
    c.bench_function("l2_nearest_resident", |b| {
        let mut l2 = Cache::new(128 * 1024, 8, 128);
        for i in 0..512u64 {
            l2.fill(i * 37 * 128, false);
        }
        b.iter(|| black_box(l2.nearest_resident(12_345_600, 4)))
    });
}

fn bench_addr(c: &mut Criterion) {
    let map = AddressMap::new(&GpuConfig::default());
    c.bench_function("addr_decompose", |b| {
        let mut a = 0u64;
        b.iter(|| {
            a = a.wrapping_add(4096);
            black_box(map.decompose(a))
        })
    });
}

criterion_group!(
    benches,
    bench_queue,
    bench_controller_tick,
    bench_channel,
    bench_cache,
    bench_addr
);
criterion_main!(benches);
