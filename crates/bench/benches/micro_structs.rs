//! Micro-benchmarks for the hot data structures: pending-queue operations,
//! FR-FCFS candidate selection, DRAM channel commands, cache lookups, and
//! the address map.
//!
//! Uses a small self-contained timing harness (adaptive batching around
//! `std::hint::black_box`) instead of `criterion`, which is unavailable in
//! the offline build environment. Reported numbers are median-of-5 batch
//! averages — stable enough to track order-of-magnitude regressions.

use lazydram_common::{AccessKind, AddressMap, GpuConfig, MemSpace, Request, RequestId, SchedConfig};
use lazydram_core::{MemoryController, PendingQueue};
use lazydram_dram::Channel;
use lazydram_gpu::Cache;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Times `f` adaptively: grows the batch size until one batch takes ≥ 50 ms,
/// then reports the median ns/iteration over five batches.
fn bench(name: &str, mut f: impl FnMut()) {
    // Warm up + find a batch size.
    let mut batch: u64 = 1;
    loop {
        let t0 = Instant::now();
        for _ in 0..batch {
            f();
        }
        if t0.elapsed() >= Duration::from_millis(50) || batch >= 1 << 30 {
            break;
        }
        batch *= 4;
    }
    let mut per_iter: Vec<f64> = (0..5)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..batch {
                f();
            }
            t0.elapsed().as_nanos() as f64 / batch as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    println!("{name:<28} {:>12.1} ns/iter   (batch {batch})", per_iter[2]);
}

fn mkreq(map: &AddressMap, id: u64) -> Request {
    let addr = map.line_of(id.wrapping_mul(0x9E37_79B9) % (1 << 30));
    Request {
        id: RequestId(id),
        addr,
        loc: map.decompose(addr),
        kind: AccessKind::Read,
        space: MemSpace::Global,
        approximable: true,
        arrival: 0,
    }
}

fn bench_queue(map: &AddressMap) {
    bench("queue_push_remove_128", || {
        let mut q = PendingQueue::new(128, 16, 4);
        for i in 0..128u64 {
            q.push(mkreq(map, i)).unwrap();
        }
        for i in 0..128u64 {
            black_box(q.remove(RequestId(i)));
        }
    });
    let mut q = PendingQueue::new(128, 16, 4);
    for i in 0..128u64 {
        q.push(mkreq(map, i)).unwrap();
    }
    bench("queue_visible_rbl", || {
        black_box(q.visible_rbl(3, 7));
    });
}

fn bench_controller_tick(cfg: &GpuConfig, map: &AddressMap) {
    let mut mc = MemoryController::new(cfg, &SchedConfig::baseline());
    let mut next = 0u64;
    for _ in 0..96 {
        next += 1;
        let _ = mc.enqueue(mkreq(map, next));
    }
    let mut out = Vec::new();
    bench("controller_tick_loaded", || {
        if mc.pending_len() < 64 {
            for _ in 0..32 {
                next += 1;
                let _ = mc.enqueue(mkreq(map, next));
            }
        }
        out.clear();
        mc.tick(&mut out);
        black_box(&mut out);
    });
}

fn bench_channel(cfg: &GpuConfig) {
    bench("channel_act_cas_pre", || {
        let mut ch = Channel::new(cfg);
        let mut t = 0u64;
        for row in 0..8u32 {
            while !ch.can_activate(0, t) {
                t += 1;
            }
            ch.activate(0, row, t);
            while !ch.can_cas(0, AccessKind::Read, t) {
                t += 1;
            }
            ch.cas(0, AccessKind::Read, true, t);
            while !ch.can_precharge(0, t) {
                t += 1;
            }
            ch.precharge(0, t);
        }
        black_box(ch.stats().activations);
    });
}

fn bench_cache() {
    let mut l2 = Cache::new(128 * 1024, 8, 128);
    let mut i = 0u64;
    bench("l2_access_fill", || {
        i = i.wrapping_add(0x9E37).wrapping_mul(31) % (1 << 24);
        let a = i * 128;
        if l2.access(a, false) == lazydram_gpu::AccessResult::Miss {
            l2.fill(a, false);
        }
    });
    let mut l2 = Cache::new(128 * 1024, 8, 128);
    for i in 0..512u64 {
        l2.fill(i * 37 * 128, false);
    }
    bench("l2_nearest_resident", || {
        black_box(l2.nearest_resident(12_345_600, 4));
    });
}

fn bench_addr(map: &AddressMap) {
    let mut a = 0u64;
    bench("addr_decompose", || {
        a = a.wrapping_add(4096);
        black_box(map.decompose(a));
    });
}

fn main() {
    let cfg = GpuConfig::default();
    let map = AddressMap::new(&cfg);
    println!("=== micro-benchmarks (hot structures) ===");
    bench_queue(&map);
    bench_controller_tick(&cfg, &map);
    bench_channel(&cfg);
    bench_cache();
    bench_addr(&map);
}
