//! Figure 5: distribution of row activations over RBL buckets as the DMS
//! delay grows, for two applications.

use lazydram_bench::{gpu_config_from_env, Measurement, MeasureSpec, print_table, scale_from_env, SimBuilder, SweepRunner};
use lazydram_common::{DmsMode, SchedConfig};
use lazydram_workloads::by_name;

const BUCKETS: [(u32, u32); 5] = [(1, 1), (2, 2), (3, 4), (5, 8), (9, u32::MAX - 1)];

fn bucket_cells(delay: u32, m: &Measurement) -> Vec<String> {
    let h = &m.stats.dram.rbl;
    let total = h.activations().max(1) as f64;
    let mut cells = vec![format!("delay={delay}")];
    for &(lo, hi) in &BUCKETS {
        cells.push(format!("{:.1}%", 100.0 * h.count_range(lo, hi) as f64 / total));
    }
    cells.push(format!("{}", h.activations()));
    cells
}

fn fail_cells(delay: u32) -> Vec<String> {
    let mut cells = vec![format!("delay={delay}")];
    cells.extend(std::iter::repeat_n("FAIL".to_string(), BUCKETS.len() + 1));
    cells
}

fn main() {
    let scale = scale_from_env();
    let cfg = gpu_config_from_env();
    let runner = SweepRunner::from_env();
    let apps: Vec<_> = ["GEMM", "SCP"].iter().map(|n| by_name(n).expect("app")).collect();
    let delays = [128u32, 512, 2048]; // delay = 0 is the cached baseline run
    let bases = runner.baselines(&apps, &cfg, scale);
    let mut specs = Vec::new();
    for (app, base) in apps.iter().zip(&bases) {
        let Ok(base) = base else { continue };
        for &delay in &delays {
            specs.push(MeasureSpec::new(
                SimBuilder::new(app)
                    .gpu(cfg.clone())
                    .sched(
                        SchedConfig { dms: DmsMode::Static(delay), ..SchedConfig::baseline() },
                        format!("DMS({delay})"),
                    )
                    .scale(scale),
                base.exact.clone(),
            ));
        }
    }
    let results = runner.measure_all(specs);

    let mut cursor = results.iter();
    for (app, base) in apps.iter().zip(&bases) {
        let mut rows = Vec::new();
        match base {
            Ok(base) => {
                rows.push(bucket_cells(0, &base.measurement));
                for (&delay, r) in delays.iter().zip(cursor.by_ref().take(delays.len())) {
                    rows.push(match r {
                        Ok(m) => bucket_cells(delay, m),
                        Err(_) => fail_cells(delay),
                    });
                }
            }
            Err(_) => rows.push(fail_cells(0)),
        }
        print_table(
            &format!("Figure 5 ({}): activation share per RBL bucket vs delay", app.name),
            &["delay", "RBL(1)", "RBL(2)", "RBL(3-4)", "RBL(5-8)", "RBL(9+)", "total acts"],
            &rows,
        );
    }
}
