//! Figure 5: distribution of row activations over RBL buckets as the DMS
//! delay grows, for two applications.

use lazydram_bench::{print_table, scale_from_env};
use lazydram_common::{DmsMode, GpuConfig, SchedConfig};
use lazydram_workloads::{by_name, run_app};

fn main() {
    let scale = scale_from_env();
    let cfg = GpuConfig::default();
    let buckets: [(u32, u32); 5] = [(1, 1), (2, 2), (3, 4), (5, 8), (9, u32::MAX - 1)];
    for name in ["GEMM", "SCP"] {
        let app = by_name(name).expect("app");
        let mut rows = Vec::new();
        for delay in [0u32, 128, 512, 2048] {
            let sched = SchedConfig {
                dms: if delay == 0 { DmsMode::Off } else { DmsMode::Static(delay) },
                ..SchedConfig::baseline()
            };
            let r = run_app(&app, &cfg, &sched, scale);
            let h = &r.stats.dram.rbl;
            let total = h.activations().max(1) as f64;
            let mut cells = vec![format!("delay={delay}")];
            for &(lo, hi) in &buckets {
                cells.push(format!("{:.1}%", 100.0 * h.count_range(lo, hi) as f64 / total));
            }
            cells.push(format!("{}", h.activations()));
            rows.push(cells);
        }
        print_table(
            &format!("Figure 5 ({name}): activation share per RBL bucket vs delay"),
            &["delay", "RBL(1)", "RBL(2)", "RBL(3-4)", "RBL(5-8)", "RBL(9+)", "total acts"],
            &rows,
        );
    }
}
