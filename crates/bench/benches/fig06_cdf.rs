//! Figure 6: cumulative distribution of row activations over requests sorted
//! by the RBL of their activation (read-only rows), for GEMM and 3MM.

use lazydram_bench::scale_from_env;
use lazydram_common::{GpuConfig, SchedConfig};
use lazydram_workloads::{by_name, run_app};

fn main() {
    let scale = scale_from_env();
    let cfg = GpuConfig::default();
    for name in ["GEMM", "3MM"] {
        let app = by_name(name).expect("app");
        let r = run_app(&app, &cfg, &SchedConfig::baseline(), scale);
        let d = &r.stats.dram;
        let all_req = d.served();
        let all_act = d.activations;
        println!("\n=== Figure 6 ({name}): cumulative activations vs requests (by RBL) ===");
        println!("total requests {all_req}, total activations {all_act}, read-only activations {}",
                 d.rbl_read_only.activations());
        println!("{:>6} {:>10} {:>10}", "RBL", "req-cum%", "act-cum%");
        for (x, y, rbl) in d.rbl_read_only.cumulative_curve(all_req, all_act) {
            println!("{:>6} {:>9.2}% {:>9.2}%", rbl, 100.0 * x, 100.0 * y);
        }
    }
}
