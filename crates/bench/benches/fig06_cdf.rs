//! Figure 6: cumulative distribution of row activations over requests sorted
//! by the RBL of their activation (read-only rows), for GEMM and 3MM.

use lazydram_bench::{gpu_config_from_env, scale_from_env, SweepRunner};
use lazydram_workloads::by_name;

fn main() {
    let scale = scale_from_env();
    let cfg = gpu_config_from_env();
    let runner = SweepRunner::from_env();
    let apps: Vec<_> = ["GEMM", "3MM"].iter().map(|n| by_name(n).expect("app")).collect();
    let bases = runner.baselines(&apps, &cfg, scale);
    for (app, base) in apps.iter().zip(&bases) {
        let name = app.name;
        println!("\n=== Figure 6 ({name}): cumulative activations vs requests (by RBL) ===");
        let base = match base {
            Ok(b) => b,
            Err(f) => {
                println!("FAILED: {}", f.message);
                continue;
            }
        };
        let d = &base.measurement.stats.dram;
        let all_req = d.served();
        let all_act = d.activations;
        println!("total requests {all_req}, total activations {all_act}, read-only activations {}",
                 d.rbl_read_only.activations());
        println!("{:>6} {:>10} {:>10}", "RBL", "req-cum%", "act-cum%");
        for (x, y, rbl) in d.rbl_read_only.cumulative_curve(all_req, all_act) {
            println!("{:>6} {:>9.2}% {:>9.2}%", rbl, 100.0 * x, 100.0 * y);
        }
    }
}
