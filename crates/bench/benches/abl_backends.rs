//! Ablation: the headline scheme across the whole memory-backend matrix.
//!
//! Where `abl_hbm` varies the *organization* under the same banked GDDR5
//! model, this harness varies the *model itself*: every [`DramPreset`] —
//! banked GDDR5/HBM, DDR4- and LPDDR4-class timing packages, the
//! bank-state-free Naive backend and the per-bank Flexible-Latency
//! backend — runs baseline vs `Dyn-DMS+Dyn-AMS` on the same apps. The
//! Section V claim generalizes if the normalized activation savings
//! survive on every backend; Naive is the control (no banks, so no row
//! locality to harvest — its "norm acts" column reads 1.000 by design).

use lazydram_bench::{
    print_table, scale_from_env, MeasureSpec, MemoryTech, Scheme, SimBuilder, SweepRunner,
};
use lazydram_common::DramPreset;
use lazydram_workloads::by_name;

fn main() {
    let scale = scale_from_env();
    let apps: Vec<_> = ["SCP", "MVT", "meanfilter"]
        .iter()
        .map(|n| by_name(n).expect("app"))
        .collect();
    let runner = SweepRunner::from_env();
    // One baseline per (app, preset): the cache keys on the full config
    // (backend kind included), so each backend is its own cached cell.
    let mut bases = Vec::new();
    for preset in DramPreset::ALL {
        bases.push(runner.baselines(&apps, &preset.gpu_config(), scale));
    }
    let mut specs = Vec::new();
    for (t, preset) in DramPreset::ALL.into_iter().enumerate() {
        for (app, base) in apps.iter().zip(&bases[t]) {
            let Ok(base) = base else { continue };
            specs.push(MeasureSpec::new(
                SimBuilder::new(app).preset(preset).scheme(Scheme::DynCombo).scale(scale),
                base.exact.clone(),
            ));
        }
    }
    let results = runner.measure_all(specs);

    let mut rows = Vec::new();
    let mut cursor = results.iter();
    for (t, preset) in DramPreset::ALL.into_iter().enumerate() {
        let tech = MemoryTech::for_preset(preset);
        for (app, base) in apps.iter().zip(&bases[t]) {
            let row = match base {
                Ok(base) => {
                    let lazy = cursor.next().expect("one lazy run per ok baseline");
                    match lazy {
                        Ok(m) => vec![
                            app.name.to_string(),
                            preset.label().to_string(),
                            format!("{tech:?}"),
                            base.measurement.activations.to_string(),
                            format!(
                                "{:.3}",
                                m.activations as f64
                                    / base.measurement.activations.max(1) as f64
                            ),
                            format!("{:.3}", m.ipc / base.measurement.ipc.max(1e-9)),
                            format!(
                                "{:.3}",
                                m.row_energy_pj / base.measurement.row_energy_pj.max(1e-9)
                            ),
                        ],
                        Err(_) => vec![
                            app.name.to_string(),
                            preset.label().to_string(),
                            format!("{tech:?}"),
                            base.measurement.activations.to_string(),
                            "FAIL".to_string(),
                            "FAIL".to_string(),
                            "FAIL".to_string(),
                        ],
                    }
                }
                Err(_) => vec![
                    app.name.to_string(),
                    preset.label().to_string(),
                    format!("{tech:?}"),
                    "FAIL".to_string(),
                    "FAIL".to_string(),
                    "FAIL".to_string(),
                    "FAIL".to_string(),
                ],
            };
            rows.push(row);
        }
    }
    print_table(
        "Ablation: Dyn-DMS+Dyn-AMS across the memory-backend matrix",
        &["app", "backend", "energy tech", "base acts", "norm acts", "norm IPC", "norm rowE"],
        &rows,
    );
}
