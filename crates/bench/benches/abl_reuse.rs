//! Ablation (paper footnote 2): the simple no-reuse VP model vs the advanced
//! model that inserts approximated lines into L2 (error propagates through
//! reuse).

use lazydram_bench::{gpu_config_from_env, MeasureSpec, print_table, scale_from_env, SimBuilder, SweepRunner};
use lazydram_common::{SchedConfig};
use lazydram_workloads::group;

fn main() {
    let scale = scale_from_env();
    let cfg = gpu_config_from_env();
    let apps = [group(1), group(2), group(3)].concat();
    let runner = SweepRunner::from_env();
    let bases = runner.baselines(&apps, &cfg, scale);
    let mut specs = Vec::new();
    for (app, base) in apps.iter().zip(&bases) {
        let Ok(base) = base else { continue };
        for (label, sched) in [
            ("simple", SchedConfig::static_ams()),
            ("reuse", SchedConfig { approx_reuse: true, ..SchedConfig::static_ams() }),
        ] {
            specs.push(MeasureSpec::new(
                SimBuilder::new(app).gpu(cfg.clone()).sched(sched, label).scale(scale),
                base.exact.clone(),
            ));
        }
    }
    let results = runner.measure_all(specs);

    let mut rows = Vec::new();
    let mut cursor = results.iter();
    for (app, base) in apps.iter().zip(&bases) {
        let mut cells = vec![app.name.to_string()];
        let Ok(base) = base else {
            cells.extend(std::iter::repeat_n("FAIL".to_string(), 4));
            rows.push(cells);
            continue;
        };
        let base_acts = base.measurement.activations.max(1) as f64;
        for r in cursor.by_ref().take(2) {
            match r {
                Ok(m) => {
                    cells.push(format!("{:.3}", m.activations as f64 / base_acts));
                    cells.push(format!("{:.1}%", 100.0 * m.app_error));
                }
                Err(_) => {
                    cells.push("FAIL".to_string());
                    cells.push("FAIL".to_string());
                }
            }
        }
        rows.push(cells);
    }
    print_table(
        "Ablation (footnote 2): simple VP vs approx-reuse VP under Static-AMS",
        &["app", "acts (simple)", "err (simple)", "acts (reuse)", "err (reuse)"],
        &rows,
    );
}
