//! Ablation (paper footnote 2): the simple no-reuse VP model vs the advanced
//! model that inserts approximated lines into L2 (error propagates through
//! reuse).

use lazydram_bench::{measure, measure_baseline, print_table, scale_from_env};
use lazydram_common::{GpuConfig, SchedConfig};
use lazydram_workloads::group;

fn main() {
    let scale = scale_from_env();
    let cfg = GpuConfig::default();
    let mut rows = Vec::new();
    for app in [group(1), group(2), group(3)].concat() {
        let (base, exact) = measure_baseline(&app, &cfg, scale);
        let simple = measure(&app, &cfg, &SchedConfig::static_ams(), scale, "simple", &exact);
        let adv_sched = SchedConfig { approx_reuse: true, ..SchedConfig::static_ams() };
        let adv = measure(&app, &cfg, &adv_sched, scale, "reuse", &exact);
        rows.push(vec![
            app.name.to_string(),
            format!("{:.3}", simple.activations as f64 / base.activations.max(1) as f64),
            format!("{:.1}%", 100.0 * simple.app_error),
            format!("{:.3}", adv.activations as f64 / base.activations.max(1) as f64),
            format!("{:.1}%", 100.0 * adv.app_error),
        ]);
    }
    print_table(
        "Ablation (footnote 2): simple VP vs approx-reuse VP under Static-AMS",
        &["app", "acts (simple)", "err (simple)", "acts (reuse)", "err (reuse)"],
        &rows,
    );
}
