//! Ablation: scheduler baselines. How much row locality does the FR-FCFS +
//! open-page baseline already capture vs strict FCFS and closed-page, and
//! what the lazy scheduler adds on top.

use lazydram_bench::{gpu_config_from_env, mean, MeasureSpec, print_table, scale_from_env, SimBuilder, SweepRunner};
use lazydram_common::{Arbiter, RowPolicy, SchedConfig};
use lazydram_workloads::by_name;

fn main() {
    let scale = scale_from_env();
    let cfg = gpu_config_from_env();
    // "FR-FCFS+open" *is* the baseline scheduler — that column comes from the
    // cached baseline run instead of a duplicate simulation.
    let sweep: Vec<(&str, SchedConfig)> = vec![
        ("FCFS+open", SchedConfig { arbiter: Arbiter::Fcfs, ..SchedConfig::baseline() }),
        ("FR-FCFS+closed", SchedConfig { row_policy: RowPolicy::Closed, ..SchedConfig::baseline() }),
        ("lazy (Dyn+Dyn)", SchedConfig::dyn_combo()),
    ];
    let columns = ["FCFS+open", "FR-FCFS+closed", "FR-FCFS+open", "lazy (Dyn+Dyn)"];
    let apps: Vec<_> = ["GEMM", "SCP", "CONS", "meanfilter", "MVT", "LPS"]
        .iter()
        .map(|n| by_name(n).expect("app"))
        .collect();
    let runner = SweepRunner::from_env();
    let bases = runner.baselines(&apps, &cfg, scale);
    let mut specs = Vec::new();
    for (app, base) in apps.iter().zip(&bases) {
        let Ok(base) = base else { continue };
        for (label, sched) in &sweep {
            specs.push(MeasureSpec::new(
                SimBuilder::new(app).gpu(cfg.clone()).sched(sched.clone(), *label).scale(scale),
                base.exact.clone(),
            ));
        }
    }
    let results = runner.measure_all(specs);

    let mut rows = Vec::new();
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); columns.len()];
    let mut cursor = results.iter();
    for (app, base) in apps.iter().zip(&bases) {
        let mut cells = vec![app.name.to_string()];
        let Ok(base) = base else {
            cells.extend(columns.iter().map(|_| "FAIL".to_string()));
            rows.push(cells);
            continue;
        };
        let base_acts = base.measurement.activations.max(1) as f64;
        let sweep_res: Vec<_> = cursor.by_ref().take(sweep.len()).collect();
        // Column order: the two non-baseline variants, the baseline itself
        // (ratio 1.000 by construction), then the lazy scheme.
        let ordered = [
            sweep_res[0].as_ref().ok().map(|m| m.activations as f64),
            sweep_res[1].as_ref().ok().map(|m| m.activations as f64),
            Some(base.measurement.activations as f64),
            sweep_res[2].as_ref().ok().map(|m| m.activations as f64),
        ];
        for (i, acts) in ordered.iter().enumerate() {
            match acts {
                Some(a) => {
                    let v = a / base_acts;
                    cols[i].push(v);
                    cells.push(format!("{v:.3}"));
                }
                None => cells.push("FAIL".to_string()),
            }
        }
        rows.push(cells);
    }
    let mut mrow = vec!["MEAN".to_string()];
    for c in &cols {
        mrow.push(format!("{:.3}", mean(c)));
    }
    rows.push(mrow);
    let header: Vec<String> = std::iter::once("app".into())
        .chain(columns.iter().map(|l| l.to_string()))
        .collect();
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    print_table(
        "Ablation: activations under scheduler baselines (normalized to FR-FCFS+open)",
        &hdr,
        &rows,
    );
}
