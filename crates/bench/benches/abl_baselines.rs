//! Ablation: scheduler baselines. How much row locality does the FR-FCFS +
//! open-page baseline already capture vs strict FCFS and closed-page, and
//! what the lazy scheduler adds on top.

use lazydram_bench::{mean, print_table, scale_from_env};
use lazydram_common::{Arbiter, GpuConfig, RowPolicy, SchedConfig};
use lazydram_workloads::{by_name, run_app};

fn main() {
    let scale = scale_from_env();
    let cfg = GpuConfig::default();
    let variants: Vec<(&str, SchedConfig)> = vec![
        ("FCFS+open", SchedConfig { arbiter: Arbiter::Fcfs, ..SchedConfig::baseline() }),
        ("FR-FCFS+closed", SchedConfig { row_policy: RowPolicy::Closed, ..SchedConfig::baseline() }),
        ("FR-FCFS+open", SchedConfig::baseline()),
        ("lazy (Dyn+Dyn)", SchedConfig::dyn_combo()),
    ];
    let mut rows = Vec::new();
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
    for name in ["GEMM", "SCP", "CONS", "meanfilter", "MVT", "LPS"] {
        let app = by_name(name).expect("app");
        let base = run_app(&app, &cfg, &SchedConfig::baseline(), scale);
        let base_acts = base.stats.dram.activations.max(1) as f64;
        let mut cells = vec![name.to_string()];
        for (i, (_, sched)) in variants.iter().enumerate() {
            let r = run_app(&app, &cfg, sched, scale);
            let v = r.stats.dram.activations as f64 / base_acts;
            cols[i].push(v);
            cells.push(format!("{v:.3}"));
        }
        rows.push(cells);
    }
    let mut mrow = vec!["MEAN".to_string()];
    for c in &cols {
        mrow.push(format!("{:.3}", mean(c)));
    }
    rows.push(mrow);
    let header: Vec<String> = std::iter::once("app".into())
        .chain(variants.iter().map(|(l, _)| l.to_string()))
        .collect();
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    print_table(
        "Ablation: activations under scheduler baselines (normalized to FR-FCFS+open)",
        &hdr,
        &rows,
    );
}
