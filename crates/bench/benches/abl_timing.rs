//! Ablation: timing-model fidelity. The paper's Table I timing set vs the
//! extended GDDR5 constraint set (tFAW, bank-group tCCDL, periodic refresh):
//! the lazy scheduler's activation reductions must survive the extra
//! constraints.

use lazydram_bench::{print_table, scale_from_env, MeasureSpec, Scheme, SimBuilder, SweepRunner};
use lazydram_common::{DramTimings, GpuConfig};
use lazydram_workloads::by_name;

fn main() {
    let scale = scale_from_env();
    let timing_sets = [
        ("Table I", DramTimings::default()),
        ("extended", DramTimings::gddr5_extended()),
    ];
    let apps: Vec<_> = ["SCP", "MVT", "meanfilter", "CONS"]
        .iter()
        .map(|n| by_name(n).expect("app"))
        .collect();
    let runner = SweepRunner::from_env();
    let mut bases = Vec::new();
    for (_, timings) in &timing_sets {
        let cfg = GpuConfig { timings: *timings, ..GpuConfig::default() };
        bases.push((cfg.clone(), runner.baselines(&apps, &cfg, scale)));
    }
    let mut specs = Vec::new();
    for (cfg, tech_bases) in &bases {
        for (app, base) in apps.iter().zip(tech_bases) {
            let Ok(base) = base else { continue };
            specs.push(MeasureSpec::new(
                SimBuilder::new(app).gpu(cfg.clone()).scheme(Scheme::DynCombo).scale(scale),
                base.exact.clone(),
            ));
        }
    }
    let results = runner.measure_all(specs);

    let mut cursor = results.iter();
    let mut cells: Vec<Vec<Vec<String>>> = vec![Vec::new(); apps.len()];
    for (t, (tl, _)) in timing_sets.iter().enumerate() {
        for (a, (app, base)) in apps.iter().zip(&bases[t].1).enumerate() {
            let row = match base {
                Ok(base) => {
                    let lazy = cursor.next().expect("one lazy run per ok baseline");
                    match lazy {
                        Ok(m) => vec![
                            app.name.to_string(),
                            tl.to_string(),
                            base.measurement.activations.to_string(),
                            format!("{:.3}", m.activations as f64
                                    / base.measurement.activations.max(1) as f64),
                            format!("{:.3}", m.ipc / base.measurement.ipc.max(1e-9)),
                        ],
                        Err(_) => vec![
                            app.name.to_string(),
                            tl.to_string(),
                            base.measurement.activations.to_string(),
                            "FAIL".to_string(),
                            "FAIL".to_string(),
                        ],
                    }
                }
                Err(_) => vec![
                    app.name.to_string(),
                    tl.to_string(),
                    "FAIL".to_string(),
                    "FAIL".to_string(),
                    "FAIL".to_string(),
                ],
            };
            cells[a].push(row);
        }
    }
    let mut rows = Vec::new();
    for app_rows in cells {
        rows.extend(app_rows);
    }
    print_table(
        "Ablation: lazy-scheduler benefit under extended GDDR5 timing (tFAW/tCCDL/refresh)",
        &["app", "timing", "base acts", "lazy norm acts", "lazy norm IPC"],
        &rows,
    );
}
