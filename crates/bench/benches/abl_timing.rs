//! Ablation: timing-model fidelity. The paper's Table I timing set vs the
//! extended GDDR5 constraint set (tFAW, bank-group tCCDL, periodic refresh):
//! the lazy scheduler's activation reductions must survive the extra
//! constraints.

use lazydram_bench::{print_table, scale_from_env};
use lazydram_common::{DramTimings, GpuConfig, SchedConfig};
use lazydram_workloads::{by_name, run_app};

fn main() {
    let scale = scale_from_env();
    let mut rows = Vec::new();
    for name in ["SCP", "MVT", "meanfilter", "CONS"] {
        let app = by_name(name).expect("app");
        for (tl, timings) in [
            ("Table I", DramTimings::default()),
            ("extended", DramTimings::gddr5_extended()),
        ] {
            let cfg = GpuConfig { timings, ..GpuConfig::default() };
            let base = run_app(&app, &cfg, &SchedConfig::baseline(), scale);
            let lazy = run_app(&app, &cfg, &SchedConfig::dyn_combo(), scale);
            rows.push(vec![
                name.to_string(),
                tl.to_string(),
                base.stats.dram.activations.to_string(),
                format!("{:.3}", lazy.stats.dram.activations as f64
                        / base.stats.dram.activations.max(1) as f64),
                format!("{:.3}", lazy.stats.ipc() / base.stats.ipc().max(1e-9)),
            ]);
        }
    }
    print_table(
        "Ablation: lazy-scheduler benefit under extended GDDR5 timing (tFAW/tCCDL/refresh)",
        &["app", "timing", "base acts", "lazy norm acts", "lazy norm IPC"],
        &rows,
    );
}
