//! Ablation (Section V): the row-locality benefit is independent of memory
//! technology — run the headline scheme on HBM1/HBM2-like organizations.

use lazydram_bench::{print_table, scale_from_env, MeasureSpec, Scheme, SimBuilder, SweepRunner};
use lazydram_common::DramPreset;
use lazydram_workloads::by_name;

fn main() {
    let scale = scale_from_env();
    let techs = [
        ("GDDR5", DramPreset::Gddr5.gpu_config()),
        ("HBM1", DramPreset::Hbm1.gpu_config()),
        ("HBM2", DramPreset::Hbm2.gpu_config()),
    ];
    let apps: Vec<_> = ["SCP", "MVT", "meanfilter"]
        .iter()
        .map(|n| by_name(n).expect("app"))
        .collect();
    let runner = SweepRunner::from_env();
    // One baseline per (app, tech): the cache keys on the config, so the
    // three techs are three distinct cached baselines computed in parallel.
    let mut bases = Vec::new();
    for (_, cfg) in &techs {
        bases.push(runner.baselines(&apps, cfg, scale));
    }
    let mut specs = Vec::new();
    for (t, (_, cfg)) in techs.iter().enumerate() {
        for (app, base) in apps.iter().zip(&bases[t]) {
            let Ok(base) = base else { continue };
            specs.push(MeasureSpec::new(
                SimBuilder::new(app).gpu(cfg.clone()).scheme(Scheme::DynCombo).scale(scale),
                base.exact.clone(),
            ));
        }
    }
    let results = runner.measure_all(specs);

    let mut rows = Vec::new();
    let mut cursor = results.iter();
    // Reassemble in (tech, app) job order, then print in (app, tech) order.
    let mut cells: Vec<Vec<Vec<String>>> = vec![Vec::new(); apps.len()];
    for (t, (tl, _)) in techs.iter().enumerate() {
        for (a, (app, base)) in apps.iter().zip(&bases[t]).enumerate() {
            let row = match base {
                Ok(base) => {
                    let lazy = cursor.next().expect("one lazy run per ok baseline");
                    match lazy {
                        Ok(m) => vec![
                            app.name.to_string(),
                            tl.to_string(),
                            base.measurement.activations.to_string(),
                            format!("{:.3}", m.activations as f64
                                    / base.measurement.activations.max(1) as f64),
                            format!("{:.3}", m.ipc / base.measurement.ipc.max(1e-9)),
                        ],
                        Err(_) => vec![
                            app.name.to_string(),
                            tl.to_string(),
                            base.measurement.activations.to_string(),
                            "FAIL".to_string(),
                            "FAIL".to_string(),
                        ],
                    }
                }
                Err(_) => vec![
                    app.name.to_string(),
                    tl.to_string(),
                    "FAIL".to_string(),
                    "FAIL".to_string(),
                    "FAIL".to_string(),
                ],
            };
            cells[a].push(row);
        }
    }
    for app_rows in cells {
        rows.extend(app_rows);
    }
    print_table(
        "Ablation: Dyn-DMS+Dyn-AMS across memory technologies (Section V claim)",
        &["app", "tech", "base acts", "lazy norm acts", "lazy norm IPC"],
        &rows,
    );
}
