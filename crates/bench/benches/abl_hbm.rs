//! Ablation (Section V): the row-locality benefit is independent of memory
//! technology — run the headline scheme on HBM1/HBM2-like organizations.

use lazydram_bench::{print_table, scale_from_env};
use lazydram_common::{GpuConfig, SchedConfig};
use lazydram_workloads::{by_name, run_app};

fn main() {
    let scale = scale_from_env();
    let mut rows = Vec::new();
    for name in ["SCP", "MVT", "meanfilter"] {
        let app = by_name(name).expect("app");
        for (tl, cfg) in [
            ("GDDR5", GpuConfig::default()),
            ("HBM1", GpuConfig::hbm1()),
            ("HBM2", GpuConfig::hbm2()),
        ] {
            let base = run_app(&app, &cfg, &SchedConfig::baseline(), scale);
            let lazy = run_app(&app, &cfg, &SchedConfig::dyn_combo(), scale);
            rows.push(vec![
                name.to_string(),
                tl.to_string(),
                base.stats.dram.activations.to_string(),
                format!("{:.3}", lazy.stats.dram.activations as f64
                        / base.stats.dram.activations.max(1) as f64),
                format!("{:.3}", lazy.stats.ipc() / base.stats.ipc().max(1e-9)),
            ]);
        }
    }
    print_table(
        "Ablation: Dyn-DMS+Dyn-AMS across memory technologies (Section V claim)",
        &["app", "tech", "base acts", "lazy norm acts", "lazy norm IPC"],
        &rows,
    );
}
