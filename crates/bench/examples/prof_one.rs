//! Profile one sweep cell: run a single app/scheme/scale combination
//! (min-of-3 wall clock) and print the simulator's per-phase split.
//! The workhorse for localizing hot-path regressions without running the
//! whole perf_smoke suite. Usage:
//!   cargo run --release -p lazydram-bench --features prof --example prof_one -- SLA baseline 0.2
use lazydram_bench::SimBuilder;
use lazydram_common::SchedConfig;
use lazydram_workloads::by_name;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let app = args.get(1).map(String::as_str).unwrap_or("SLA");
    let scheme = args.get(2).map(String::as_str).unwrap_or("baseline");
    let scale: f64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(0.2);
    let sched = match scheme {
        "baseline" => SchedConfig::baseline(),
        "Static-DMS" => SchedConfig::static_dms(),
        other => panic!("unknown scheme {other}"),
    };
    let spec = by_name(app).expect("known app");
    let run = SimBuilder::new(&spec)
        .sched(sched, "perf")
        .scale(scale)
        .cycle_skipping(true)
        .build();
    let mut best = f64::INFINITY;
    let mut stats = None;
    for _ in 0..3 {
        let t0 = Instant::now();
        let r = run.run();
        best = best.min(t0.elapsed().as_secs_f64());
        stats = Some(r.stats);
    }
    let stats = stats.unwrap();
    println!("{app}/{scheme} scale={scale}: wall {best:.4}s, cycles {}", stats.core_cycles);
    for p in lazydram_common::prof::Phase::ALL {
        println!("  {:<13} {:>9.4}s", p.name(), stats.prof.get(p));
    }
}
