//! The result cache's sweep-level contract: warm sweeps are byte-identical
//! to cold ones, cross-harness baseline reuse works through a shared store
//! directory, `require` mode fails misses with a remediation hint, and
//! `refresh` mode re-simulates.

use lazydram_bench::{CacheMode, CachePolicy, MeasureSpec, SimBuilder, SweepRunner};
use lazydram_common::{DmsMode, GpuConfig, SchedConfig};
use lazydram_workloads::by_name;
use std::path::{Path, PathBuf};

const SCALE: f64 = 0.05;

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lazydram_cache_sweep_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn runner(dir: &Path, mode: CacheMode, results: &Path) -> SweepRunner {
    SweepRunner::with_workers(2)
        .quiet()
        .with_cache(Some(CachePolicy::new(dir, mode)))
        .with_results_file(results.to_str().unwrap())
}

/// One small fig04-like sweep (baselines + two DMS delays per app) through
/// `runner`; returns `(measurement JSON lines, jobs run)`.
fn sweep(runner: &SweepRunner) -> Vec<String> {
    let apps: Vec<_> = ["SCP", "GEMM"].iter().map(|n| by_name(n).expect("app")).collect();
    let cfg = GpuConfig::default();
    let bases = runner.baselines(&apps, &cfg, SCALE);
    let mut specs = Vec::new();
    for (app, base) in apps.iter().zip(&bases) {
        let base = base.as_ref().expect("baseline runs");
        for delay in [128u32, 512] {
            specs.push(MeasureSpec::new(
                SimBuilder::new(app)
                    .gpu(cfg.clone())
                    .sched(
                        SchedConfig { dms: DmsMode::Static(delay), ..SchedConfig::baseline() },
                        format!("DMS({delay})"),
                    )
                    .scale(SCALE),
                base.exact.clone(),
            ));
        }
    }
    let mut out: Vec<String> =
        bases.iter().map(|r| r.as_ref().expect("baseline").measurement.to_json()).collect();
    out.extend(
        runner.measure_all(specs).into_iter().map(|r| r.expect("cell runs").to_json()),
    );
    out
}

#[test]
fn warm_sweep_is_byte_identical_and_served_from_disk() {
    let dir = fresh_dir("warm");
    let cold_jsonl = dir.join("cold.jsonl");
    let warm_jsonl = dir.join("warm.jsonl");
    std::fs::create_dir_all(&dir).unwrap();

    let cold_runner = runner(&dir, CacheMode::Auto, &cold_jsonl);
    let cold = sweep(&cold_runner);
    let cold_stats = cold_runner.cache().expect("cache attached").stats();
    assert_eq!(cold_stats.hits(), 0, "empty store cannot hit");
    assert_eq!(cold_stats.published, 6, "2 baselines + 4 cells published");
    drop(cold_runner);

    // A second runner = a second harness process: fresh hot tier, shared
    // disk store. Everything must come back from disk, byte for byte.
    let warm_runner = runner(&dir, CacheMode::Auto, &warm_jsonl);
    let warm = sweep(&warm_runner);
    assert_eq!(cold, warm, "warm measurements must match cold ones exactly");
    let warm_stats = warm_runner.cache().expect("cache attached").stats();
    assert_eq!(warm_stats.disk_hits, 6, "every cell served from disk");
    assert_eq!(warm_stats.misses, 0);
    assert_eq!(warm_stats.published, 0, "nothing re-simulated");
    drop(warm_runner);

    let cold_bytes = std::fs::read(&cold_jsonl).unwrap();
    let warm_bytes = std::fs::read(&warm_jsonl).unwrap();
    assert!(!cold_bytes.is_empty());
    assert_eq!(cold_bytes, warm_bytes, "JSONL must be byte-identical cold vs warm");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn second_harness_reuses_first_harness_baselines() {
    let dir = fresh_dir("xharness");
    std::fs::create_dir_all(&dir).unwrap();
    let apps: Vec<_> = ["SCP", "MVT"].iter().map(|n| by_name(n).expect("app")).collect();
    let cfg = GpuConfig::default();

    // Harness 1 (fig04 analog): computes the baselines, publishing them.
    let first = SweepRunner::with_workers(2)
        .quiet()
        .with_cache(Some(CachePolicy::new(&dir, CacheMode::Auto)));
    let cold: Vec<String> = first
        .baselines(&apps, &cfg, SCALE)
        .into_iter()
        .map(|r| r.expect("baseline").measurement.to_json())
        .collect();
    assert_eq!(first.cache().unwrap().stats().published, 2);

    // Harness 2 (fig12 analog): a different runner over the same store must
    // serve both baselines from disk without simulating.
    let second = SweepRunner::with_workers(2)
        .quiet()
        .with_cache(Some(CachePolicy::new(&dir, CacheMode::Auto)));
    let warm: Vec<String> = second
        .baselines(&apps, &cfg, SCALE)
        .into_iter()
        .map(|r| r.expect("baseline").measurement.to_json())
        .collect();
    assert_eq!(cold, warm);
    let stats = second.cache().unwrap().stats();
    assert_eq!(stats.disk_hits, 2, "baselines served across harnesses");
    assert_eq!(stats.published, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn require_mode_miss_fails_with_remediation_hint() {
    let dir = fresh_dir("require");
    std::fs::create_dir_all(&dir).unwrap();
    let app = by_name("SCP").expect("app");
    let cfg = GpuConfig::default();
    let runner = SweepRunner::with_workers(1)
        .quiet()
        .with_cache(Some(CachePolicy::new(&dir, CacheMode::Require)));
    let results = runner.baselines(&[app], &cfg, SCALE);
    let failure = results[0].as_ref().expect_err("empty store + require must fail");
    assert!(
        failure.message.contains("LAZYDRAM_CACHE_MODE=auto"),
        "failure must tell the user how to populate the store: {}",
        failure.message
    );
    assert!(failure.message.contains("no cache entry"), "{}", failure.message);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn refresh_mode_resimulates_and_republishes() {
    let dir = fresh_dir("refresh");
    std::fs::create_dir_all(&dir).unwrap();
    let app = by_name("SCP").expect("app");
    let cfg = GpuConfig::default();

    let seed = SweepRunner::with_workers(1)
        .quiet()
        .with_cache(Some(CachePolicy::new(&dir, CacheMode::Auto)));
    let first = seed.baselines(std::slice::from_ref(&app), &cfg, SCALE);
    let first = first[0].as_ref().expect("baseline").measurement.to_json();

    let refresh = SweepRunner::with_workers(1)
        .quiet()
        .with_cache(Some(CachePolicy::new(&dir, CacheMode::Refresh)));
    let again = refresh.baselines(&[app], &cfg, SCALE);
    let again = again[0].as_ref().expect("baseline").measurement.to_json();
    assert_eq!(first, again, "determinism: a refresh reproduces the same bytes");
    let stats = refresh.cache().unwrap().stats();
    assert_eq!(stats.hits(), 0, "refresh never consults the store");
    assert_eq!(stats.published, 1, "refresh overwrites the entry");
    let _ = std::fs::remove_dir_all(&dir);
}
