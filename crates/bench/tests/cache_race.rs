//! Multi-process stress: two separate runner processes racing on one cache
//! directory must (a) produce byte-identical JSONL results and (b) leave the
//! store with only complete, valid entries — the lock-free tmp+rename
//! publish protocol never exposes a torn file.

use lazydram_bench::{CacheMode, CachePolicy, MeasureSpec, SimBuilder, SweepRunner};
use lazydram_common::{DmsMode, GpuConfig, SchedConfig};
use lazydram_workloads::by_name;
use std::path::{Path, PathBuf};

const SCALE: f64 = 0.05;
const CHILD_ENV: &str = "LAZYDRAM_TEST_CACHE_RACE_CHILD";

fn race_sweep(cache_dir: &Path, results: &Path) {
    let apps: Vec<_> = ["SCP", "GEMM"].iter().map(|n| by_name(n).expect("app")).collect();
    let cfg = GpuConfig::default();
    let runner = SweepRunner::with_workers(2)
        .quiet()
        .with_cache(Some(CachePolicy::new(cache_dir, CacheMode::Auto)))
        .with_results_file(results.to_str().unwrap());
    let bases = runner.baselines(&apps, &cfg, SCALE);
    let mut specs = Vec::new();
    for (app, base) in apps.iter().zip(&bases) {
        let base = base.as_ref().expect("baseline runs");
        for delay in [128u32, 512] {
            specs.push(MeasureSpec::new(
                SimBuilder::new(app)
                    .gpu(cfg.clone())
                    .sched(
                        SchedConfig { dms: DmsMode::Static(delay), ..SchedConfig::baseline() },
                        format!("DMS({delay})"),
                    )
                    .scale(SCALE),
                base.exact.clone(),
            ));
        }
    }
    for r in runner.measure_all(specs) {
        r.expect("cell runs");
    }
}

/// Child-process entry point: runs the sweep when spawned by the race test
/// below, returns immediately under a normal `cargo test`.
#[test]
fn child_worker() {
    let Ok(spec) = std::env::var(CHILD_ENV) else { return };
    let (cache_dir, results) = spec.split_once('\x1f').expect("dir\\x1fresults spec");
    race_sweep(Path::new(cache_dir), Path::new(results));
}

#[test]
fn racing_processes_converge_without_torn_entries() {
    let base = std::env::temp_dir().join(format!("lazydram_cache_race_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let cache_dir = base.join("store");
    std::fs::create_dir_all(&cache_dir).unwrap();
    let exe = std::env::current_exe().expect("test binary path");

    let spawn = |jsonl: &PathBuf| {
        std::process::Command::new(&exe)
            .args(["--exact", "child_worker", "--nocapture"])
            .env(
                CHILD_ENV,
                format!("{}\x1f{}", cache_dir.display(), jsonl.display()),
            )
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn child")
    };

    // Two uncoordinated processes, same store, same sweep: publishes race.
    let a_jsonl = base.join("a.jsonl");
    let b_jsonl = base.join("b.jsonl");
    let mut a = spawn(&a_jsonl);
    let mut b = spawn(&b_jsonl);
    assert!(a.wait().expect("child a").success(), "racer A must succeed");
    assert!(b.wait().expect("child b").success(), "racer B must succeed");

    let a_bytes = std::fs::read(&a_jsonl).expect("racer A results");
    let b_bytes = std::fs::read(&b_jsonl).expect("racer B results");
    assert!(!a_bytes.is_empty());
    assert_eq!(a_bytes, b_bytes, "racing processes must emit byte-identical JSONL");

    // Every surviving entry is complete and valid — no torn files, no
    // leftover publish temporaries.
    let store = lazydram_bench::Store::open(&cache_dir, CacheMode::Auto).unwrap();
    let entries = store.entries().unwrap();
    assert_eq!(entries.len(), 6, "2 baselines + 4 cells, each exactly once");
    for e in &entries {
        e.identity.as_ref().unwrap_or_else(|err| {
            panic!("torn/invalid entry {} after race: {err}", e.path.display())
        });
    }
    let tmps: Vec<_> = std::fs::read_dir(&cache_dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
        .collect();
    assert!(tmps.is_empty(), "publish temporaries must not survive: {tmps:?}");
    let _ = std::fs::remove_dir_all(&base);
}
