//! The on-disk behavior of the content-addressed result store: publish →
//! lookup round-trips, defense against corrupt/truncated/stale files, LRU
//! garbage collection and `clear`.

use lazydram_bench::store::{encode_entry, Fidelity, Store, ENTRY_EXT, STORE_VERSION};
use lazydram_bench::{CacheMode, Measurement};
use lazydram_common::SimStats;
use std::path::PathBuf;

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lazydram_cache_store_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sample(app: &str, scheme: &str, activations: u64) -> Measurement {
    let mut stats = SimStats::new();
    stats.core_cycles = 1000 + activations;
    stats.dram.activations = activations;
    Measurement {
        app: app.into(),
        scheme: scheme.into(),
        stats,
        ipc: 3.25,
        activations,
        avg_rbl: 2.0,
        coverage: 0.5,
        app_error: 0.0,
        row_energy_pj: 2.5e6,
        truncated: false,
        replayed: false,
        cached: false,
    }
}

#[test]
fn publish_then_lookup_round_trips_with_provenance() {
    let dir = fresh_dir("roundtrip");
    let store = Store::open(&dir, CacheMode::Auto).unwrap();
    let m = sample("SCP", "DMS(128)", 42);
    let key = Store::cell_key(0xABCD, Fidelity::Execute);
    assert!(store.lookup(key, "SCP", "DMS(128)").is_none(), "empty store misses");
    store.publish(key, &m).unwrap();

    // Fresh store = fresh process: no hot tier, pure disk path.
    let other = Store::open(&dir, CacheMode::Auto).unwrap();
    let hit = other.lookup(key, "SCP", "DMS(128)").expect("published entry hits");
    assert!(hit.cached, "a served hit carries the provenance flag");
    assert_eq!(hit.to_json(), m.to_json(), "served bytes identical modulo provenance");
    assert_eq!(hit.stats, m.stats);
    let s = other.stats();
    assert_eq!((s.disk_hits, s.hot_hits, s.misses), (1, 0, 0));
    assert_eq!(store.stats().misses, 1, "the pre-publish lookup was a miss");

    // Same-store second lookup is a hot-tier hit.
    let again = other.lookup(key, "SCP", "DMS(128)").expect("hot hit");
    assert!(again.cached);
    assert_eq!(other.stats().hot_hits, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_truncated_and_foreign_files_are_rejected_not_served() {
    let dir = fresh_dir("torn");
    let store = Store::open(&dir, CacheMode::Auto).unwrap();
    let m = sample("SCP", "baseline", 7);
    let key = Store::cell_key(1, Fidelity::Execute);
    store.publish(key, &m).unwrap();
    let path = store.entry_path(key, "SCP", "baseline");
    let good = std::fs::read(&path).unwrap();

    // Truncated mid-write (a torn copy that bypassed the atomic rename).
    std::fs::write(&path, &good[..good.len() / 2]).unwrap();
    let fresh = Store::open(&dir, CacheMode::Auto).unwrap();
    assert!(fresh.lookup(key, "SCP", "baseline").is_none(), "torn entry must miss");
    assert_eq!(fresh.stats().rejected, 1);

    // Bit rot in the middle of the payload.
    let mut rotted = good.clone();
    rotted[good.len() / 2] ^= 0x01;
    std::fs::write(&path, &rotted).unwrap();
    let fresh = Store::open(&dir, CacheMode::Auto).unwrap();
    assert!(fresh.lookup(key, "SCP", "baseline").is_none(), "corrupt entry must miss");

    // A valid entry renamed to another cell's address must not be served.
    std::fs::write(&path, &good).unwrap();
    let other_key = Store::cell_key(2, Fidelity::Execute);
    std::fs::rename(&path, store.entry_path(other_key, "SCP", "baseline")).unwrap();
    let fresh = Store::open(&dir, CacheMode::Auto).unwrap();
    assert!(
        fresh.lookup(other_key, "SCP", "baseline").is_none(),
        "entry with a foreign embedded key must miss"
    );

    // After re-simulation (publish), the cell serves again.
    let fresh = Store::open(&dir, CacheMode::Auto).unwrap();
    fresh.publish(key, &m).unwrap();
    let served = Store::open(&dir, CacheMode::Auto).unwrap();
    assert!(served.lookup(key, "SCP", "baseline").is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn gc_evicts_invalid_then_least_recently_used() {
    let dir = fresh_dir("gc");
    let store = Store::open(&dir, CacheMode::Auto).unwrap();
    let keys: Vec<u64> = (0..3).map(|i| Store::cell_key(i, Fidelity::Execute)).collect();
    for (i, key) in keys.iter().enumerate() {
        store.publish(*key, &sample("SCP", &format!("DMS({i})"), i as u64)).unwrap();
        // Ensure distinct file times so LRU ordering is deterministic.
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    // Plant one invalid file: evicted first regardless of recency.
    let junk = dir.join(format!("junk.{ENTRY_EXT}"));
    std::fs::write(&junk, b"not a snap entry").unwrap();

    // Touch the oldest entry via a lookup: it becomes the most recent.
    let reader = Store::open(&dir, CacheMode::Auto).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(25));
    assert!(reader.lookup(keys[0], "SCP", "DMS(0)").is_some());

    let entry_bytes = std::fs::metadata(store.entry_path(keys[0], "SCP", "DMS(0)")).unwrap().len();
    // Budget for two entries: the junk file and the LRU entry (keys[1],
    // since keys[0] was just used) must go.
    let admin = Store::open(&dir, CacheMode::Auto).unwrap();
    let evicted = admin.gc(2 * entry_bytes).unwrap();
    let evicted_names: Vec<String> = evicted
        .iter()
        .map(|e| e.path.file_name().unwrap().to_string_lossy().into_owned())
        .collect();
    assert!(
        evicted_names.iter().any(|n| n.starts_with("junk")),
        "invalid entries evicted first: {evicted_names:?}"
    );
    assert!(store.entry_path(keys[0], "SCP", "DMS(0)").exists(), "recently used survives");
    assert!(!store.entry_path(keys[1], "SCP", "DMS(1)").exists(), "LRU entry evicted");
    assert!(store.entry_path(keys[2], "SCP", "DMS(2)").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn clear_removes_entries_and_stray_temporaries() {
    let dir = fresh_dir("clear");
    let store = Store::open(&dir, CacheMode::Auto).unwrap();
    store.publish(Store::cell_key(9, Fidelity::Execute), &sample("SCP", "baseline", 9)).unwrap();
    std::fs::write(dir.join(".deadbeef.123.0.tmp"), b"stray").unwrap();
    std::fs::write(dir.join("unrelated.txt"), b"keep me").unwrap();
    assert_eq!(store.clear().unwrap(), 2, "one entry + one temporary removed");
    assert!(dir.join("unrelated.txt").exists(), "non-store files untouched");
    assert_eq!(store.entries().unwrap().len(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_version_is_embedded_in_fresh_entries() {
    // Belt-and-braces for the upgrade path: the constant the reader checks
    // is the one the writer embeds.
    let m = sample("SCP", "baseline", 1);
    let bytes = encode_entry(Store::cell_key(0, Fidelity::Execute), &m);
    // Header (6 bytes) + frame header (16) + u16 store version.
    let embedded = u16::from_le_bytes([bytes[22], bytes[23]]);
    assert_eq!(embedded, STORE_VERSION);
}
