//! The sweep runner's contract: parallel execution is observably identical
//! to sequential execution, panics are isolated per job, and the baseline
//! cache is transparent.

use lazydram_bench::{measure_baseline, Job, MeasureSpec, SimBuilder, SweepRunner};
use lazydram_common::{DmsMode, GpuConfig, SchedConfig};
use lazydram_workloads::by_name;
use std::sync::Arc;

const SCALE: f64 = 0.05;

fn subset() -> Vec<lazydram_workloads::AppSpec> {
    ["SCP", "GEMM", "MVT"]
        .iter()
        .map(|n| by_name(n).expect("app"))
        .collect()
}

fn sweep_json(workers: usize, path: &str) -> Vec<String> {
    let apps = subset();
    let cfg = GpuConfig::default();
    let runner = SweepRunner::with_workers(workers)
        .quiet()
        .with_results_file(path);
    let bases = runner.baselines(&apps, &cfg, SCALE);
    let mut specs = Vec::new();
    for (app, base) in apps.iter().zip(&bases) {
        let base = base.as_ref().expect("baseline runs");
        for delay in [128u32, 512] {
            specs.push(MeasureSpec::new(
                SimBuilder::new(app)
                    .gpu(cfg.clone())
                    .sched(
                        SchedConfig { dms: DmsMode::Static(delay), ..SchedConfig::baseline() },
                        format!("DMS({delay})"),
                    )
                    .scale(SCALE),
                base.exact.clone(),
            ));
        }
    }
    let results = runner.measure_all(specs);
    results
        .into_iter()
        .map(|r| r.expect("no panics in this sweep").to_json())
        .collect()
}

#[test]
fn parallel_results_identical_to_sequential() {
    let dir = std::env::temp_dir();
    let seq_path = dir.join("lazydram_runner_test_seq.jsonl");
    let par_path = dir.join("lazydram_runner_test_par.jsonl");
    let seq = sweep_json(1, seq_path.to_str().unwrap());
    let par = sweep_json(4, par_path.to_str().unwrap());
    assert_eq!(seq, par, "parallel measurements must match sequential ones");
    // The JSONL results files must be byte-identical too: same records, same
    // order, no timing data.
    let seq_file = std::fs::read(&seq_path).expect("sequential results file");
    let par_file = std::fs::read(&par_path).expect("parallel results file");
    assert!(!seq_file.is_empty(), "results file has records");
    assert_eq!(seq_file, par_file, "JSONL files must be byte-identical");
    let _ = std::fs::remove_file(seq_path);
    let _ = std::fs::remove_file(par_path);
}

#[test]
fn panicking_job_is_isolated_and_reported() {
    let runner = SweepRunner::with_workers(4).quiet();
    let results = runner.run(vec![
        Job::new("ok-1", || 1 + 1),
        Job::new("boom", || -> i32 { panic!("deliberate test panic") }),
        Job::new("ok-2", || 40 + 2),
    ]);
    assert_eq!(results.len(), 3);
    assert_eq!(*results[0].as_ref().expect("ok-1 runs"), 2);
    let failure = results[1].as_ref().expect_err("boom must fail");
    assert_eq!(failure.label, "boom");
    assert!(
        failure.message.contains("deliberate test panic"),
        "panic payload surfaces: {}",
        failure.message
    );
    assert_eq!(*results[2].as_ref().expect("ok-2 runs"), 42);
}

#[test]
fn baseline_cache_returns_same_measurement_as_fresh_computation() {
    let app = by_name("SCP").expect("app");
    let cfg = GpuConfig::default();
    let runner = SweepRunner::with_workers(2).quiet();
    let cached = runner.baseline(&app, &cfg, SCALE);
    let again = runner.baseline(&app, &cfg, SCALE);
    assert!(
        Arc::ptr_eq(&cached, &again),
        "second lookup must hit the cache, not recompute"
    );
    let (fresh, fresh_exact) = measure_baseline(&app, &cfg, SCALE);
    assert_eq!(
        cached.measurement.to_json(),
        fresh.to_json(),
        "cached baseline must equal a fresh sequential computation"
    );
    assert_eq!(*cached.exact, fresh_exact, "exact outputs must match");
}
