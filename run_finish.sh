#!/bin/bash
# Time-boxed completion of the reproduction sweep.
cd /root/repo
REP_APPS="GEMM,SCP,MVT,CONS,meanfilter,LPS,RAY,blackscholes"
{
echo; echo "##### bench: fig12_main (headline, LAZYDRAM_SCALE=1.0)"
LAZYDRAM_SCALE=1.0 cargo bench -q -p lazydram-bench --bench fig12_main 2>/dev/null

for b in fig05_rbl_shift fig06_cdf fig07_case_studies fig11_thrbl fig14_laplacian fig15_group4; do
  echo; echo "##### bench: $b (LAZYDRAM_SCALE=0.5)"
  LAZYDRAM_SCALE=0.5 cargo bench -q -p lazydram-bench --bench $b 2>/dev/null
done

echo; echo "##### bench: fig10_bwutil_ipc (LAZYDRAM_SCALE=0.5, representative apps)"
LAZYDRAM_SCALE=0.5 LAZYDRAM_APPS="$REP_APPS" cargo bench -q -p lazydram-bench --bench fig10_bwutil_ipc 2>/dev/null

echo; echo "##### bench: tab02_classify (LAZYDRAM_SCALE=0.35, representative apps)"
LAZYDRAM_SCALE=0.35 LAZYDRAM_APPS="$REP_APPS" cargo bench -q -p lazydram-bench --bench tab02_classify 2>/dev/null

echo; echo "##### bench: fig02_queue_size (LAZYDRAM_SCALE=0.35, representative apps)"
LAZYDRAM_SCALE=0.35 LAZYDRAM_APPS="$REP_APPS" cargo bench -q -p lazydram-bench --bench fig02_queue_size 2>/dev/null

echo; echo "##### bench: fig13_queue_dms (LAZYDRAM_SCALE=0.35, representative apps)"
LAZYDRAM_SCALE=0.35 LAZYDRAM_APPS="$REP_APPS" cargo bench -q -p lazydram-bench --bench fig13_queue_dms 2>/dev/null

for b in abl_baselines abl_timing abl_hbm tab01_config; do
  echo; echo "##### bench: $b (LAZYDRAM_SCALE=0.5)"
  LAZYDRAM_SCALE=0.5 cargo bench -q -p lazydram-bench --bench $b 2>/dev/null
done

echo; echo "##### bench: micro_structs (criterion)"
cargo bench -q -p lazydram-bench --bench micro_structs 2>/dev/null | grep -E "time:|^[a-z_]+" | head -40
echo; echo "### sweep complete"
} >> /root/repo/bench_output.txt 2>&1
echo finisher-done
