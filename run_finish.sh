#!/bin/bash
# Time-boxed completion of the reproduction sweep (parallel runner).
set -euo pipefail
cd /root/repo
export LAZYDRAM_JOBS=${LAZYDRAM_JOBS:-$(nproc)}
REP_APPS="GEMM,SCP,MVT,CONS,meanfilter,LPS,RAY,blackscholes"

# Fail loudly on compile errors before the sweep starts.
cargo build --release -p lazydram-bench --benches

{
echo; echo "##### bench: fig12_main (headline, LAZYDRAM_SCALE=1.0)"
LAZYDRAM_SCALE=1.0 cargo bench -q -p lazydram-bench --bench fig12_main

for b in fig05_rbl_shift fig06_cdf fig07_case_studies fig11_thrbl fig14_laplacian fig15_group4; do
  echo; echo "##### bench: $b (LAZYDRAM_SCALE=0.5)"
  LAZYDRAM_SCALE=0.5 cargo bench -q -p lazydram-bench --bench "$b"
done

echo; echo "##### bench: fig10_bwutil_ipc (LAZYDRAM_SCALE=0.5, representative apps)"
LAZYDRAM_SCALE=0.5 LAZYDRAM_APPS="$REP_APPS" cargo bench -q -p lazydram-bench --bench fig10_bwutil_ipc

echo; echo "##### bench: tab02_classify (LAZYDRAM_SCALE=0.35, representative apps)"
LAZYDRAM_SCALE=0.35 LAZYDRAM_APPS="$REP_APPS" cargo bench -q -p lazydram-bench --bench tab02_classify

echo; echo "##### bench: fig02_queue_size (LAZYDRAM_SCALE=0.35, representative apps)"
LAZYDRAM_SCALE=0.35 LAZYDRAM_APPS="$REP_APPS" cargo bench -q -p lazydram-bench --bench fig02_queue_size

echo; echo "##### bench: fig13_queue_dms (LAZYDRAM_SCALE=0.35, representative apps)"
LAZYDRAM_SCALE=0.35 LAZYDRAM_APPS="$REP_APPS" cargo bench -q -p lazydram-bench --bench fig13_queue_dms

for b in abl_baselines abl_timing abl_hbm tab01_config; do
  echo; echo "##### bench: $b (LAZYDRAM_SCALE=0.5)"
  LAZYDRAM_SCALE=0.5 cargo bench -q -p lazydram-bench --bench "$b"
done

echo; echo "##### bench: micro_structs"
cargo bench -q -p lazydram-bench --bench micro_structs | head -40
echo; echo "### sweep complete"
} >> /root/repo/bench_output.txt 2>&1
echo finisher-done
